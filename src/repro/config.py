"""System-wide configuration for the simulated heterogeneous SoC.

All calibration constants live here: hardware geometry (modeled on the
paper's AMD A10-7850K testbed), OS path latencies, scheduler parameters,
C-state latencies, and the mitigation / QoS knobs evaluated in the paper.

Times are integer nanoseconds throughout.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .uarch.state import UarchConfig

#: Nanosecond helpers.
US = 1_000
MS = 1_000_000


@dataclass(frozen=True)
class CpuConfig:
    """CPU complex geometry and per-core speeds (A10-7850K-like)."""

    num_cores: int = 4
    freq_ghz: float = 3.7
    #: Cycles an L1D miss stalls the pipeline (to L2/memory mix).
    l1_miss_penalty_cycles: float = 20.0
    #: Cycles a branch mispredict costs (pipeline refill).
    branch_mispredict_penalty_cycles: float = 14.0
    #: Probability that a line a handler evicted would have been reused.
    pollution_reuse_probability: float = 0.8
    #: Scale on the analytic footprint-x-coverage pollution charge
    #: (accounts for repeated touches per line and L1I effects the model
    #: does not simulate; calibrated against the paper's Fig. 3a spread).
    pollution_amplification: float = 18.0
    uarch: UarchConfig = field(default_factory=UarchConfig)

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.freq_ghz

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.freq_ghz


@dataclass(frozen=True)
class SchedulerConfig:
    """Scheduler behaviour (CFS-flavoured, heavily simplified)."""

    #: Timeslice for normal-priority threads when the runqueue is contended.
    timeslice_ns: int = 2 * MS
    #: A woken normal-priority thread preempts the running one only if the
    #: runner has already consumed this much of its slice (wakeup granularity).
    wakeup_granularity_ns: int = 30 * US
    #: Cost of a context switch (save/restore, runqueue manipulation).
    context_switch_ns: int = 900
    #: Cost of crossing user<->kernel mode once (Fig. 2's 'a' segments).
    mode_switch_ns: int = 250


@dataclass(frozen=True)
class CStateConfig:
    """Core C-state (CC6) model, per the paper's Section IV-B."""

    #: How long a core must be continuously idle before entering CC6.
    entry_grace_ns: int = 150 * US
    #: Latency to enter CC6 (state save, cache flush initiation).
    entry_latency_ns: int = 20 * US
    #: Latency to exit CC6 on an interrupt (the paper notes sleeping CPUs
    #: respond slightly slower to SSRs than active ones).
    exit_latency_ns: int = 50 * US
    #: Whether CC6 entry flushes the core's L1 (it does on Family 15h).
    flush_caches_on_entry: bool = True


@dataclass(frozen=True)
class OsPathConfig:
    """Latencies of the SSR handling chain of Fig. 1 (calibrated, not measured)."""

    #: Top-half hard-IRQ handler body (read IOMMU log head, ack) -- step 3/3b.
    top_half_ns: int = 1_200
    #: Extra top-half work per additional coalesced request in the same IRQ.
    top_half_per_extra_request_ns: int = 300
    #: Inter-processor interrupt: cost at the receiving core -- step 3a.
    ipi_receive_ns: int = 700
    #: IPI send cost added to the sender's handler.
    ipi_send_ns: int = 200
    #: Scheduler dispatch latency for the threaded bottom half: the wakeup
    #: must traverse the scheduler (enqueue, possible IPI, context switch,
    #: idle-exit) before pre-processing starts.  The monolithic handler of
    #: Section V-C runs the pre-processing inline in hard-IRQ context and
    #: skips this entirely -- the paper attributes its up-to-2.3x GPU gain
    #: to "eliminating the OS scheduling delay in waking up the first
    #: bottom half handler".
    bottom_half_dispatch_ns: int = 18_000
    #: Bottom-half pre-processing per request (parse PPR entry) -- step 4a.
    bottom_half_per_request_ns: int = 800
    #: Work-queue insertion -- step 4b.
    queue_work_ns: int = 400
    #: Kernel worker servicing a soft page fault -- step 5 (get_user_pages
    #: fast path; no disk I/O, matching the paper's soft-fault methodology).
    page_fault_service_ns: int = 3_500
    #: Writing the completion back to the IOMMU/GPU -- step 6.
    response_ns: int = 800
    #: Kernel handler cache/branch footprints (lines / branch executions)
    #: pushed through the interrupted core's structures per stage.
    top_half_footprint: Tuple[int, int] = (32, 16)
    bottom_half_footprint: Tuple[int, int] = (64, 32)
    worker_footprint: Tuple[int, int] = (192, 96)


@dataclass(frozen=True)
class IommuConfig:
    """IOMMU (PPR queue + MSI) behaviour."""

    #: Peripheral Page Request queue capacity (entries).
    ppr_queue_entries: int = 64
    #: Latency from device fault to PPR entry visible + MSI raised.
    fault_to_interrupt_ns: int = 1_000
    #: Hardware limit on requests folded into one coalesced interrupt.
    max_coalesce_batch: int = 16
    #: MSI arbitration mode: ``lowest_priority`` (default; sticky-idle
    #: preference, rotation over busy cores, sleepers avoided) or
    #: ``round_robin_all`` (naive spread that also wakes sleeping cores —
    #: an ablation of the delivery-policy modeling decision in DESIGN.md).
    msi_arbitration: str = "lowest_priority"


@dataclass(frozen=True)
class PowerConfig:
    """A simple per-core power model for the energy-efficiency results.

    The paper argues energy through CC6 residency; this model turns the
    accounted mode times into energy so the cost of lost sleep is a number.
    Values are ballpark figures for a Kaveri-class core.
    """

    #: Power while executing (user/kernel/IRQ/switch), watts per core.
    active_w: float = 8.0
    #: Power while awake but idle (grace periods, C-state transitions).
    idle_w: float = 2.0
    #: Power in CC6.
    cc6_w: float = 0.15


@dataclass(frozen=True)
class GpuConfig:
    """Integrated GPU (GCN-like) parameters."""

    freq_mhz: float = 720.0
    #: Hardware limit on outstanding SSRs (fault state the GPU must hold).
    #: This bound is what makes backpressure-based QoS possible (Section VI).
    max_outstanding_ssrs: int = 32


@dataclass(frozen=True)
class MitigationConfig:
    """The three mitigations of Section V, freely combinable."""

    #: Steer all SSR interrupts to one core instead of spreading (Sec. V-A).
    steer_to_single_core: bool = False
    #: The core that receives steered interrupts (and the pinned bottom half).
    steering_target: int = 0
    #: IOMMU interrupt coalescing window; 0 disables (Sec. V-B).  The paper
    #: uses the hardware maximum of 13 us.
    coalesce_window_ns: int = 0
    #: Fold the bottom half into the top half (monolithic handler, Sec. V-C).
    monolithic_bottom_half: bool = False
    #: NAPI-style polling (the Related-Work alternative the paper discusses
    #: via Mogul & Ramakrishnan): disable SSR interrupts entirely and poll
    #: the PPR queue at this period.  0 disables.  Contains interrupt
    #: storms, but burns CPU even when the accelerator is quiet — exactly
    #: why the paper deems polling a poor fit for SSRs.
    polling_period_ns: int = 0

    @property
    def label(self) -> str:
        """A short, stable name for tables (matches the paper's legends)."""
        parts = []
        if self.steer_to_single_core:
            parts.append("Intr_to_single_core")
        if self.coalesce_window_ns:
            parts.append("Intr_coalescing")
        if self.monolithic_bottom_half:
            parts.append("Monolithic_bottom_half")
        if self.polling_period_ns:
            parts.append("Polling")
        return " + ".join(parts) if parts else "Default"


#: The paper's coalescing window (PCIe register D0F2xF4_x93 maximum).
COALESCE_WINDOW_PAPER_NS = 13 * US


@dataclass(frozen=True)
class QosConfig:
    """The Section VI QoS governor."""

    enabled: bool = False
    #: Maximum fraction of total CPU time that may go to SSR servicing
    #: (th_25 -> 0.25, th_5 -> 0.05, th_1 -> 0.01).
    ssr_time_threshold: float = 1.0
    #: Governor sampling period (the paper suggests ~10 us; we default a
    #: little coarser, which only quantizes enforcement).
    sample_period_ns: int = 20 * US
    #: Horizon of the exponentially-weighted running average of the SSR
    #: time fraction.  Pure per-sample fractions flap (a throttled window
    #: shows ~0% SSR time and instantly resets the back-off); averaging
    #: makes enforcement track the budget over a meaningful interval.
    averaging_window_ns: int = 500 * US
    #: Initial back-off delay (doubles while over threshold) -- Fig. 11.
    initial_delay_ns: int = 10 * US
    #: Ceiling on the exponential back-off.
    max_delay_ns: int = 5 * MS
    #: The paper's future-work extension: derive the threshold dynamically
    #: from how much CPU capacity is actually idle, instead of a fixed
    #: administrator setting.  When enabled, ``ssr_time_threshold`` is
    #: ignored and the effective threshold floats between
    #: ``adaptive_floor`` (fully busy host) and ~1.0 (fully idle host).
    adaptive: bool = False
    adaptive_floor: float = 0.02

    @property
    def label(self) -> str:
        if not self.enabled:
            return "default"
        if self.adaptive:
            return "th_adaptive"
        return f"th_{int(round(self.ssr_time_threshold * 100))}"


@dataclass(frozen=True)
class HousekeepingConfig:
    """Background OS activity that sets the no-SSR CC6 baseline (~86%)."""

    #: Scheduler-tick period per core (250 Hz-like).
    timer_tick_ns: int = 4 * MS
    #: CPU time consumed by each tick.
    timer_tick_cost_ns: int = 30 * US
    #: Period of a small per-system housekeeping daemon (RCU, kswapd, ...).
    daemon_period_ns: int = 12 * MS
    #: CPU burst of the daemon each period.
    daemon_burst_ns: int = 600 * US


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration: one object fully describes a machine + policy."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    cstate: CStateConfig = field(default_factory=CStateConfig)
    os_path: OsPathConfig = field(default_factory=OsPathConfig)
    iommu: IommuConfig = field(default_factory=IommuConfig)
    gpu: GpuConfig = field(default_factory=GpuConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    mitigation: MitigationConfig = field(default_factory=MitigationConfig)
    qos: QosConfig = field(default_factory=QosConfig)
    housekeeping: HousekeepingConfig = field(default_factory=HousekeepingConfig)
    seed: int = 42

    def with_mitigation(self, **kwargs) -> "SystemConfig":
        """Return a copy with mitigation fields replaced."""
        return replace(self, mitigation=replace(self.mitigation, **kwargs))

    def with_qos(self, **kwargs) -> "SystemConfig":
        """Return a copy with QoS fields replaced."""
        return replace(self, qos=replace(self.qos, **kwargs))

    def with_seed(self, seed: int) -> "SystemConfig":
        return replace(self, seed=seed)

    @property
    def label(self) -> str:
        mitigation = self.mitigation.label
        if self.qos.enabled:
            return f"{mitigation} + QoS({self.qos.label})"
        return mitigation

    # ------------------------------------------------------------------
    # Stable hashing (persistent run caching across processes/invocations)
    # ------------------------------------------------------------------
    def stable_json(self) -> str:
        """A canonical JSON rendering of every field of this configuration.

        Key order is sorted and separators are fixed, so two equal configs
        — in any two Python processes — produce byte-identical strings.
        Floats round-trip exactly (JSON uses ``repr``-precision).
        """
        return json.dumps(
            dataclasses.asdict(self), sort_keys=True, separators=(",", ":")
        )

    def stable_digest(self) -> str:
        """SHA-256 of :meth:`stable_json`: a process-independent identity."""
        return hashlib.sha256(self.stable_json().encode("utf-8")).hexdigest()

    @classmethod
    def schema_digest(cls) -> str:
        """SHA-256 over the config *schema*: class, field names, and types.

        Adding, removing, renaming, or retyping any field — at any nesting
        level — changes this digest, which the persistent run cache folds
        into its code fingerprint so stale results can never be returned
        against a reshaped configuration space.
        """
        digest = hashlib.sha256()
        seen = set()

        def walk(klass) -> None:
            if klass in seen:
                return
            seen.add(klass)
            digest.update(klass.__name__.encode("utf-8"))
            for field_info in dataclasses.fields(klass):
                digest.update(field_info.name.encode("utf-8"))
                digest.update(str(field_info.type).encode("utf-8"))
                if field_info.default_factory is not dataclasses.MISSING and (
                    dataclasses.is_dataclass(field_info.default_factory)
                ):
                    walk(field_info.default_factory)

        walk(cls)
        return digest.hexdigest()
