"""Simulation-as-a-service: keep the engine resident, serve runs over HTTP.

The serving tier the ROADMAP's north star calls for, built from the two
ingredients the repo already had — the deterministic parallel run engine
(:mod:`repro.core.planner`) and the content-addressed result cache
(:mod:`repro.core.runcache`) — and governed by the paper's own medicine:
a bounded admission queue (429 + ``Retry-After`` on overflow, never an
unbounded backlog) and exponential back-off on new admissions while
simulation exceeds its share of host capacity (the Figure 11 loop,
applied to the service itself).  See ``docs/service.md``.

Layout:

* :mod:`~repro.service.jobs` — job specs, lifecycle, TTL'd store, dedupe
* :mod:`~repro.service.admission` — bounded queue + QoS governor
* :mod:`~repro.service.scheduler` — batch drain onto the parallel engine
* :mod:`~repro.service.server` — ``ThreadingHTTPServer`` JSON API
* :mod:`~repro.service.obs` — job trace documents, ``/v1/ops`` snapshot,
  structured JSONL ops logging
* :mod:`~repro.service.client` — stdlib client + ``hiss-client`` CLI
* :mod:`~repro.service.daemon` — ``hiss-serve`` entry point
* :mod:`~repro.service.top` — ``hiss-top`` live console
"""

from typing import TYPE_CHECKING

from .admission import AdmissionController, RejectedJob, ServiceGovernor
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    BadSpec,
    Job,
    JobSpec,
    JobStore,
)
from .obs import OpsLog, build_stitched_trace, build_trace_document, ops_document
from .scheduler import JobScheduler, dedupe_key_for, plan_spec
from .server import HissService

if TYPE_CHECKING:  # pragma: no cover
    from .client import ServiceClient, ServiceError, ServiceRejected

#: Client classes resolve lazily (PEP 562) so ``python -m
#: repro.service.client`` doesn't double-import the module it is running.
_CLIENT_EXPORTS = ("ServiceClient", "ServiceError", "ServiceRejected")


def __getattr__(name: str):
    if name in _CLIENT_EXPORTS:
        from . import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionController",
    "BadSpec",
    "CANCELLED",
    "DONE",
    "FAILED",
    "HissService",
    "Job",
    "JobScheduler",
    "JobSpec",
    "JobStore",
    "OpsLog",
    "QUEUED",
    "RUNNING",
    "RejectedJob",
    "ServiceClient",
    "ServiceError",
    "ServiceGovernor",
    "ServiceRejected",
    "build_stitched_trace",
    "build_trace_document",
    "dedupe_key_for",
    "ops_document",
    "plan_spec",
]
