"""``hiss-top``: a live operational console for a running daemon.

Polls ``GET /v1/ops`` and renders queue depth, governor state, cache hit
rates, stage-latency percentiles, and the most recent jobs — the serving
tier's ``top``.  Three modes, all stdlib:

* **curses** (default on a TTY when available): flicker-free full-screen
  refresh, quit with ``q``.
* **plain refresh** (``--plain``, or when curses/TTY are unavailable):
  clears the terminal between frames with ANSI escapes.
* **one-shot** (``--once``): render a single frame to stdout and exit —
  what the CI smoke test runs.

Rendering is a pure function (:func:`render_ops`) over the ops document,
so tests cover the console without a terminal or a server.
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
from typing import Any, Dict, List, Optional

from .client import DEFAULT_URL, ServiceClient, ServiceError

__all__ = ["main", "render_ops"]


def _fmt_s(value: Optional[float]) -> str:
    """Compact duration: 832ms, 4.21s, 2m09s, 1h04m."""
    if value is None:
        return "-"
    if value < 1.0:
        return f"{value * 1e3:.0f}ms"
    if value < 60.0:
        return f"{value:.2f}s"
    if value < 3600.0:
        return f"{int(value // 60)}m{int(value % 60):02d}s"
    return f"{int(value // 3600)}h{int((value % 3600) // 60):02d}m"


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value * 100:.0f}%"


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _latency_rows(latency: Dict[str, Any]) -> List[str]:
    rows = [f"  {'stage':<12} {'count':>6} {'p50':>8} {'p95':>8} {'p99':>8} {'max':>8}"]
    for label, summary in latency.items():
        if not summary or not summary.get("count"):
            rows.append(f"  {label:<12} {'0':>6} {'-':>8} {'-':>8} {'-':>8} {'-':>8}")
            continue
        pct = summary.get("percentiles", {})
        rows.append(
            f"  {label:<12} {summary['count']:>6} "
            f"{_fmt_s(pct.get('p50')):>8} {_fmt_s(pct.get('p95')):>8} "
            f"{_fmt_s(pct.get('p99')):>8} {_fmt_s(summary.get('max')):>8}"
        )
    return rows


def render_ops(doc: Dict[str, Any], width: int = 80) -> str:
    """One frame of the console, as plain text (pure; unit-testable)."""
    queue = doc.get("queue", {})
    governor = doc.get("governor", {})
    workers = doc.get("workers", {})
    cache = doc.get("cache", {})
    trace = doc.get("trace", {})
    latency = doc.get("latency", {})
    jobs = doc.get("jobs", {})
    counts = jobs.get("counts", {})

    state = "DRAINING" if doc.get("draining") else "serving"
    lines: List[str] = []
    lines.append(
        f"hiss-top — {state}, up {_fmt_s(doc.get('uptime_s'))}, "
        f"{workers.get('resolved_workers', '?')} worker(s)"
    )
    lines.append("=" * min(width, 78))

    depth = queue.get("depth", 0)
    limit = max(1, queue.get("limit", 1))
    lines.append(
        f"queue     [{_bar(depth / limit)}] {depth}/{queue.get('limit', '?')}"
        f"  mean service {_fmt_s(queue.get('mean_service_s'))}"
        f"  rejected full={queue.get('rejected_queue_full', 0)}"
        f" qos={queue.get('rejected_backpressure', 0)}"
    )
    fraction = governor.get("fraction", 0.0) or 0.0
    throttling = bool(governor.get("over_threshold"))
    lines.append(
        f"load      [{_bar(fraction)}] {fraction * 100:5.1f}% of "
        f"{workers.get('resolved_workers', '?')} worker(s)"
        f"  threshold {_fmt_rate(governor.get('threshold'))}"
        f"  backoff {_fmt_s(governor.get('delay_s')) if throttling else 'off'}"
        f"  throttled {int(governor.get('throttle_events', 0))}"
    )
    disk = cache.get("disk")
    disk_text = (
        f"disk {_fmt_rate(disk['hit_rate'])} ({disk['hits']}h/{disk['misses']}m)"
        if disk
        else "disk off"
    )
    lines.append(
        f"cache     mem {cache.get('memory_runs', 0)} runs"
        f"  run hit-rate {_fmt_rate(cache.get('run_hit_rate'))}"
        f"  executed {cache.get('runs_executed', 0)}"
        f"  {disk_text}"
    )
    pool = doc.get("pool", {})
    if pool.get("spawned_workers"):
        lines.append(
            f"pool      {int(pool.get('live_workers', 0))} warm worker(s)"
            f"  spawned {int(pool.get('spawned_workers', 0))}"
            f"  recycled {int(pool.get('recycled_workers', 0))}"
            f"  crashed {int(pool.get('crashed_workers', 0))}"
            f"  failed {int(pool.get('runs_failed', 0))}"
            f"  warm-hit {_fmt_rate(pool.get('warm_hit_ratio'))}"
        )
    else:
        lines.append(
            "pool      cold (no resident workers)"
            f"  failed {int(pool.get('runs_failed', 0))}"
        )
    lines.append(
        f"trace     {'on' if trace.get('enabled') else 'off'}"
        f"  dropped events {trace.get('dropped_events', 0)}"
    )
    slo = doc.get("slo")
    if slo and slo.get("enabled"):
        firing = slo.get("firing") or []
        verdict = (
            f"{len(firing)} FIRING: {', '.join(firing)}"
            if firing
            else "all objectives met"
        )
        lines.append(
            f"slo       {slo.get('specs', 0)} objective(s)"
            f"  ticks {slo.get('ticks', 0)}  {verdict}"
        )
        for event in (slo.get("history") or [])[-3:]:
            lines.append(
                f"  {event.get('state', '?'):<9} {event.get('slo', '?'):<20} "
                f"burn {event.get('burn_fast', 0.0):.1f}x/"
                f"{event.get('burn_slow', 0.0):.1f}x  {event.get('detail', '')}"
            )
    postmortems = doc.get("postmortems")
    if postmortems and postmortems.get("enabled"):
        last = postmortems.get("last") or {}
        last_text = (
            f"last {last.get('id', '?')} ({last.get('trigger', '?')})"
            if last
            else "none captured"
        )
        lines.append(
            f"flight    {postmortems.get('stored', 0)} bundle(s)"
            f"  captured {postmortems.get('captured', 0)}"
            f"  suppressed {postmortems.get('suppressed', 0)}"
            f"  ring {(postmortems.get('ring') or {}).get('entries', 0)}"
            f"  {last_text}"
        )
    lines.append("")
    lines.append("latency")
    lines.extend(_latency_rows(latency))
    lines.append("")
    summary = "  ".join(f"{state}={n}" for state, n in sorted(counts.items()))
    lines.append(f"jobs      {summary or '(none yet)'}")
    lines.append(
        f"  {'id':<24} {'state':<9} {'trace':<16} {'runs':>5} "
        f"{'cached':>6} {'e2e':>8}  experiments"
    )
    for job in jobs.get("recent", []):
        experiments = ",".join(job.get("experiments", []))
        if len(experiments) > 24:
            experiments = experiments[:21] + "..."
        lines.append(
            f"  {job.get('id', '?'):<24} {job.get('state', '?'):<9} "
            f"{job.get('trace_id', ''):<16} {job.get('planned_runs', 0):>5} "
            f"{job.get('runs_cached', 0):>6} {_fmt_s(job.get('e2e_s')):>8}"
            f"  {experiments}"
        )
    return "\n".join(lines) + "\n"


def _fetch(client: ServiceClient) -> Dict[str, Any]:
    return client.ops()


def _run_once(client: ServiceClient) -> int:
    sys.stdout.write(render_ops(_fetch(client)))
    return 0


def _run_plain(client: ServiceClient, interval_s: float) -> int:
    try:
        while True:
            frame = render_ops(_fetch(client))
            # Home + clear-to-end beats full clears: no flicker on dumb terminals.
            sys.stdout.write("\x1b[H\x1b[2J" + frame)
            sys.stdout.flush()
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0


def _run_curses(client: ServiceClient, interval_s: float) -> int:
    import curses

    def loop(screen) -> None:
        curses.curs_set(0)
        screen.nodelay(True)
        screen.timeout(int(interval_s * 1000))
        while True:
            height, width = screen.getmaxyx()
            frame = render_ops(_fetch(client), width=width)
            screen.erase()
            for row, line in enumerate(frame.splitlines()[: height - 1]):
                try:
                    screen.addnstr(row, 0, line, width - 1)
                except curses.error:
                    pass  # lower-right cell writes can fail; harmless
            screen.refresh()
            key = screen.getch()
            if key in (ord("q"), ord("Q")):
                return

    curses.wrapper(loop)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    from ..version import add_version_flag

    parser = argparse.ArgumentParser(
        prog="hiss-top", description="Live console for a hiss-serve daemon."
    )
    add_version_flag(parser)
    parser.add_argument("--url", default=DEFAULT_URL, help=f"server URL (default {DEFAULT_URL})")
    parser.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="refresh period (default 1s)",
    )
    parser.add_argument(
        "--once", action="store_true", help="render one frame to stdout and exit"
    )
    parser.add_argument(
        "--plain", action="store_true",
        help="ANSI refresh instead of curses (automatic when not a TTY)",
    )
    parser.add_argument("--timeout", type=float, default=5.0, help="per-poll timeout (s)")
    args = parser.parse_args(argv)

    client = ServiceClient(args.url, timeout_s=args.timeout)
    try:
        if args.once:
            return _run_once(client)
        use_curses = not args.plain and sys.stdout.isatty()
        if use_curses:
            try:
                import curses  # noqa: F401
            except ImportError:
                use_curses = False
        if use_curses:
            return _run_curses(client, args.interval)
        return _run_plain(client, args.interval)
    except (ServiceError, urllib.error.URLError, OSError) as error:
        print(f"hiss-top: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
