"""The simulation-as-a-service daemon: HTTP JSON API over the run engine.

``HissService`` wires the pieces — :class:`~repro.service.jobs.JobStore`,
:class:`~repro.service.admission.AdmissionController` (+ optional
:class:`~repro.service.admission.ServiceGovernor`), and the
:class:`~repro.service.scheduler.JobScheduler` — behind a stdlib
``ThreadingHTTPServer``.  Endpoints:

====================================  =========================================
``POST /v1/jobs``                     submit a job (202; 200 if deduplicated;
                                      429 + ``Retry-After`` when admission
                                      refuses; 503 while draining)
``GET /v1/jobs``                      list live jobs (summaries)
``GET /v1/jobs/<id>``                 one job's status document
``GET /v1/jobs/<id>/result``          the CLI-equivalent ``--json`` document
``GET /v1/jobs/<id>/trace``           the job's lifecycle span document
                                      (``?format=chrome`` for a stitched
                                      chrome://tracing export)
``GET /v1/jobs/<id>/profile``         the job's interference-attribution
                                      bundle (submit with ``profile:
                                      true``; render with ``hiss-report``)
``DELETE /v1/jobs/<id>``              evict a terminal job before its TTL
``GET /v1/experiments``               registered experiments (+ plannability)
``GET /v1/ops``                       one-call operational snapshot
                                      (what ``hiss-top`` renders)
``GET /v1/alerts``                    the SLO engine's burn-rate verdicts and
                                      alert history (404 unless ``--slo``)
``GET /v1/postmortems``               stored postmortem bundles + recorder
                                      status (404 unless ``--postmortem-dir``)
``GET /v1/postmortems/<id>``          one full ``hiss.postmortem/1`` bundle
``POST /v1/postmortems/trigger``      capture a bundle now (manual trigger;
                                      rate-limited)
``GET /healthz``                      liveness + drain state
``GET /metrics``                      MetricsRegistry snapshot (JSON, or
                                      OpenMetrics-style text with
                                      ``?format=text``)
====================================  =========================================

Request handling is thread-per-connection; everything the handlers touch
is either lock-protected (store, admission, governor, disk-cache stats)
or create-once (the registry).  Submissions plan on the request thread —
milliseconds — so dedupe and rejection happen *before* any queue state
is consumed, the same "refuse early, at the boundary" shape the paper
argues for in the IOMMU's bounded PPR queue.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlparse, parse_qs

from collections import OrderedDict

from ..core import experiment as _experiment
from ..core.planner import resolve_jobs
from ..telemetry import (
    METRICS_TEXT_CONTENT_TYPE,
    MetricsRegistry,
    render_metrics_text,
)
from ..telemetry.spans import clean_trace_id, new_trace_id
from .admission import AdmissionController, RejectedJob, ServiceGovernor
from .jobs import DONE, TERMINAL_STATES, BadSpec, JobSpec, JobStore
from .obs import OpsLog, build_stitched_trace, build_trace_document, ops_document
from .scheduler import JobScheduler, dedupe_key_for, plan_spec

__all__ = ["HissService"]

#: HTTP header a client uses to keep one trace id across back-off rounds.
TRACE_HEADER = "X-Hiss-Trace-Id"

#: How many rejected traces the back-off ledger remembers (LRU-bounded).
_BACKOFF_TRACES = 256
#: Back-off rounds remembered per trace.
_BACKOFF_ROUNDS_PER_TRACE = 32


class HissService:
    """A long-lived simulation server; also usable in-process (tests, examples).

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    ``qos_threshold >= 1`` effectively disables backpressure; the queue
    bound always applies.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        queue_limit: int = 16,
        ttl_s: float = 900.0,
        qos_threshold: float = 0.75,
        qos_sample_period_s: float = 0.25,
        qos_window_s: float = 2.0,
        qos_initial_delay_s: float = 0.5,
        qos_max_delay_s: float = 30.0,
        cache_dir: Optional[str] = None,
        metrics: Optional[MetricsRegistry] = None,
        verbose: bool = False,
        trace: bool = True,
        ops_log: Optional[OpsLog] = None,
        warm_pool: Optional[bool] = None,
        slos=None,
        slo_interval_s: float = 5.0,
        postmortem_dir: Optional[str] = None,
        postmortem_keep: int = 20,
        postmortem_e2e_threshold_s: Optional[float] = None,
        flight_triggers=None,
        flight_capacity: int = 512,
    ):
        if cache_dir:
            _experiment.configure_disk_cache(cache_dir)
        self.verbose = verbose
        #: Capture worker-side in-sim events into job traces.  Lifecycle
        #: spans and the trace endpoint work either way; ``trace=False``
        #: only drops the per-run event streams.
        self.trace_enabled = trace
        self.ops_log = ops_log if ops_log is not None else OpsLog(None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Flight recorder (None = disabled, the default; disabled costs
        #: nothing — no ring, no ops-log tee, no extra routes' state —
        #: and served documents are byte-identical to a build without
        #: the subsystem).
        self.flight = None
        if postmortem_dir:
            from ..flight import FlightRecorder, PostmortemStore, default_triggers

            triggers = (
                flight_triggers
                if flight_triggers is not None
                else default_triggers(e2e_threshold_s=postmortem_e2e_threshold_s)
            )
            self.flight = FlightRecorder(
                store=PostmortemStore(postmortem_dir, keep=postmortem_keep),
                triggers=triggers,
                ring_capacity=flight_capacity,
                metrics=self.metrics,
                ops_log=self.ops_log,
            )
            self.ops_log.tee = self.flight.observe
        self.governor = ServiceGovernor(
            threshold=qos_threshold,
            capacity_cores=resolve_jobs(jobs),
            sample_period_s=qos_sample_period_s,
            window_s=qos_window_s,
            initial_delay_s=qos_initial_delay_s,
            max_delay_s=qos_max_delay_s,
        )
        self.admission = AdmissionController(
            queue_limit=queue_limit, governor=self.governor
        )
        self.store = JobStore(ttl_s=ttl_s)
        self.scheduler = JobScheduler(
            store=self.store,
            admission=self.admission,
            metrics=self.metrics,
            jobs=jobs,
            governor=self.governor,
            trace=trace,
            ops_log=self.ops_log,
            warm=warm_pool,
            flight=self.flight,
        )
        #: SLO engine (None = disabled, the default; disabled costs the
        #: request path nothing — no sampling thread, no extra routes'
        #: state, and served documents are byte-identical to a build
        #: without the subsystem).
        self.slo_engine = None
        if slos:
            from ..obsd import SloEngine

            self.slo_engine = SloEngine(
                slos, interval_s=slo_interval_s, ops_log=self.ops_log
            )
        #: Rejected-round ledger: trace id -> back-off spans accumulated
        #: before admission succeeds (LRU-bounded, lock-protected).
        self._backoff_lock = threading.Lock()
        self._backoff_rounds: "OrderedDict[str, list]" = OrderedDict()
        self._draining = False
        self._started_s = time.time()
        self._serve_thread: Optional[threading.Thread] = None
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self  # handlers reach back via self.server.service

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HissService":
        if self.flight is not None:
            # Before the scheduler: the recorder must see the first batch.
            self.flight.start(self)
        self.scheduler.start()
        if self.slo_engine is not None:
            self.slo_engine.start(self)
        self._serve_thread = threading.Thread(
            target=self.httpd.serve_forever, name="hiss-serve", daemon=True
        )
        self._serve_thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: refuse new jobs, drain in-flight, then close.

        Clients can keep polling job status for the whole drain; only
        submissions see 503.  ``drain=False`` cancels queued jobs instead
        of running them.
        """
        self._draining = True
        self.scheduler.stop(drain=drain)
        if self.slo_engine is not None:
            # After the drain so the final synchronous tick evaluates
            # everything this service actually served.
            self.slo_engine.stop(self)
        if self.flight is not None:
            # After the SLO engine: its final tick may still raise an
            # alert edge whose capture must finish before we close.
            self.flight.stop()
        self.httpd.shutdown()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10)
            self._serve_thread = None
        self.httpd.server_close()

    def __enter__(self) -> "HissService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Operations backing the endpoints
    # ------------------------------------------------------------------
    def submit_document(
        self, doc: Any, trace_id: Optional[str] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Serve one submission; returns ``(status, body, extra_headers)``.

        ``trace_id`` is the client's correlation id (the ``X-Hiss-Trace-Id``
        header) — sent back on a 429 retry it stitches every back-off round
        into the eventual job's trace.  Absent or malformed, the server
        mints one; either way the id is echoed in the response body.
        """
        received_s = time.time()
        trace_id = clean_trace_id(trace_id) or new_trace_id()
        if self._draining:
            return 503, {"error": "draining", "detail": "server is shutting down",
                         "trace_id": trace_id}, {}
        from ..experiments.common import REGISTRY

        try:
            spec = JobSpec.from_document(doc, REGISTRY)
        except BadSpec as exc:
            self.metrics.counter("service.jobs.bad_spec").inc()
            self.ops_log.log("job.bad_spec", trace=trace_id, detail=str(exc))
            return 400, {"error": "bad-spec", "detail": str(exc),
                         "trace_id": trace_id}, {}
        run_keys, serial_only = plan_spec(spec)
        plan_elapsed_s = time.time() - received_s
        dedupe_key = dedupe_key_for(spec, run_keys)
        prior_rounds = self._take_backoff_rounds(trace_id)
        try:
            job, deduplicated = self.store.submit(
                spec, dedupe_key, run_keys, serial_only, self.admission.try_admit,
                trace_id=trace_id, received_s=received_s,
                plan_elapsed_s=plan_elapsed_s,
                backoff_rounds=prior_rounds,
            )
        except RejectedJob as rejection:
            rejected_s = time.time()
            self.metrics.counter(
                "service.jobs.rejected_" + rejection.reason.replace("-", "_")
            ).inc()
            # Hand the consumed history back, then append this round, so
            # the eventually-admitted job sees every 429 it sat out.
            self._note_backoff_round(
                trace_id, received_s, rejected_s, rejection, prior_rounds
            )
            self.ops_log.log(
                "job.rejected", trace=trace_id, reason=rejection.reason,
                retry_after_s=rejection.retry_after_s,
            )
            body = {
                "error": rejection.reason,
                "detail": str(rejection),
                "retry_after_s": rejection.retry_after_s,
                "trace_id": trace_id,
            }
            headers = {
                "Retry-After": f"{rejection.retry_after_s:.3f}",
                TRACE_HEADER: trace_id,
            }
            return 429, body, headers
        if deduplicated:
            self.metrics.counter("service.jobs.deduplicated").inc()
            self.ops_log.log(
                "job.deduplicated", trace=trace_id, job=job.id,
                job_trace=job.trace_id, submissions=job.submissions,
            )
            return 200, {"deduplicated": True, "trace_id": job.trace_id,
                         "job": job.as_dict()}, {}
        self.metrics.counter("service.jobs.submitted").inc()
        self.metrics.counter("service.runs.planned").inc(len(run_keys))
        self.metrics.histogram(
            "service.submit.plan_s", low=1e-4, high=1e2, growth=1.5
        ).record(plan_elapsed_s)
        self.ops_log.log(
            "job.admitted", trace=trace_id, job=job.id,
            planned_runs=len(run_keys), queue_depth=self.admission.depth(),
            backoff_rounds=len(job.backoff_rounds), plan_s=round(plan_elapsed_s, 6),
        )
        return 202, {"deduplicated": False, "trace_id": trace_id,
                     "job": job.as_dict()}, {}

    def _note_backoff_round(
        self, trace_id: str, received_s: float, rejected_s: float,
        rejection: RejectedJob, prior_rounds: Optional[list] = None,
    ) -> None:
        """Remember one 429 round so the eventual job's trace includes it."""
        round_doc = {
            "received_s": received_s,
            "rejected_s": rejected_s,
            "reason": rejection.reason,
            "retry_after_s": rejection.retry_after_s,
        }
        with self._backoff_lock:
            rounds = self._backoff_rounds.setdefault(trace_id, [])
            self._backoff_rounds.move_to_end(trace_id)
            if prior_rounds:
                rounds[:0] = prior_rounds
            if len(rounds) < _BACKOFF_ROUNDS_PER_TRACE:
                rounds.append(round_doc)
            while len(self._backoff_rounds) > _BACKOFF_TRACES:
                self._backoff_rounds.popitem(last=False)

    def _take_backoff_rounds(self, trace_id: str) -> list:
        with self._backoff_lock:
            return self._backoff_rounds.pop(trace_id, [])

    def health_document(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": time.time() - self._started_s,
            "queue_depth": self.admission.depth(),
            "jobs": self.store.counts(),
        }

    def gauges(self) -> Dict[str, float]:
        """Point-in-time values merged into ``/metrics`` next to counters."""
        gauges: Dict[str, float] = {
            "service.queue.depth": float(self.admission.depth()),
            "service.queue.limit": float(self.admission.queue_limit),
            "service.queue.mean_service_s": self.admission.mean_service_s,
            "service.uptime_s": time.time() - self._started_s,
        }
        for name, value in self.governor.snapshot().items():
            gauges[f"service.qos.{name}"] = value
        for state, count in self.store.counts().items():
            gauges[f"service.jobs.state.{state}"] = float(count)
        disk = _experiment.get_disk_cache()
        if disk is not None:
            hits, misses, stores = disk.stats()
            gauges["service.disk_cache.hits"] = float(hits)
            gauges["service.disk_cache.misses"] = float(misses)
            gauges["service.disk_cache.stores"] = float(stores)
            lookups = hits + misses
            gauges["service.disk_cache.hit_rate"] = (
                hits / lookups if lookups else 0.0
            )
        from ..core.pool import shared_pool_stats
        from ..core.runcache import cost_model

        for name, value in shared_pool_stats().items():
            gauges[f"service.pool.{name}"] = value
        gauges["service.cost_model.observations"] = float(
            cost_model().observations
        )
        gauges["service.trace.enabled"] = float(self.trace_enabled)
        gauges["service.trace.dropped_events"] = float(self.scheduler.trace_dropped)
        # Ring-buffer overflow across every tracer the scheduler ran —
        # the canonical name mirrors Tracer.dropped_events.
        gauges["telemetry.trace.dropped_events"] = float(
            self.scheduler.trace_dropped
        )
        if self.slo_engine is not None:
            gauges.update(self.slo_engine.gauges())
        if self.flight is not None:
            gauges.update(self.flight.gauges())
        return gauges

    def metrics_document(self) -> Dict[str, Any]:
        doc = self.metrics.snapshot()
        doc["gauges"] = self.gauges()
        return doc

    def experiments_document(self) -> Dict[str, Any]:
        from ..experiments.common import REGISTRY, UNPLANNABLE
        from ..experiments.run_all import listed_experiments

        return {
            "experiments": [
                {"id": experiment_id, "plannable": experiment_id not in UNPLANNABLE}
                for experiment_id in listed_experiments()
            ],
            "count": len(REGISTRY),
        }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> HissService:
        return self.server.service

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.service.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(
        self,
        status: int,
        body: Any,
        headers: Optional[Dict[str, str]] = None,
        indent: Optional[int] = None,
    ) -> None:
        payload = (json.dumps(body, indent=indent) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_json_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        return json.loads(raw.decode("utf-8"))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service = self.service
        service.metrics.counter("service.http.requests").inc()
        parsed = urlparse(self.path)
        path = parsed.path.rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, service.health_document())
        elif path == "/metrics":
            query = parse_qs(parsed.query)
            if query.get("format", ["json"])[0] == "text":
                self._send_text(
                    200,
                    render_metrics_text(service.metrics, service.gauges()),
                    content_type=METRICS_TEXT_CONTENT_TYPE,
                )
            else:
                self._send_json(200, service.metrics_document())
        elif path == "/v1/alerts":
            if service.slo_engine is None:
                self._send_json(
                    404,
                    {"error": "slo-disabled",
                     "detail": "start the daemon with --slo to enable alerting"},
                )
            else:
                self._send_json(200, service.slo_engine.alerts_document())
        elif path == "/v1/postmortems":
            if service.flight is None:
                self._send_json(
                    404,
                    {"error": "postmortem-disabled",
                     "detail": "start the daemon with --postmortem-dir "
                     "to enable the flight recorder"},
                )
            else:
                self._send_json(
                    200,
                    {"postmortems": service.flight.store.index(),
                     "status": service.flight.document()},
                )
        elif path.startswith("/v1/postmortems/"):
            pm_id = path[len("/v1/postmortems/"):]
            if service.flight is None:
                self._send_json(
                    404,
                    {"error": "postmortem-disabled",
                     "detail": "start the daemon with --postmortem-dir "
                     "to enable the flight recorder"},
                )
            else:
                doc = service.flight.store.load(pm_id)
                if doc is None:
                    self._send_json(
                        404, {"error": "unknown-postmortem", "detail": pm_id}
                    )
                else:
                    self._send_json(200, doc, indent=2)
        elif path == "/v1/experiments":
            self._send_json(200, service.experiments_document())
        elif path == "/v1/ops":
            self._send_json(200, ops_document(service))
        elif path == "/v1/jobs":
            self._send_json(
                200, {"jobs": [job.as_dict() for job in service.store.jobs()]}
            )
        elif path.startswith("/v1/jobs/"):
            self._get_job(path[len("/v1/jobs/"):], parse_qs(parsed.query))
        else:
            self._send_json(404, {"error": "not-found", "detail": path})

    def _get_job(self, rest: str, query: Dict[str, list]) -> None:
        service = self.service
        job_id, _, tail = rest.partition("/")
        job = service.store.get(job_id)
        if job is None:
            self._send_json(404, {"error": "unknown-job", "detail": job_id})
        elif tail == "":
            self._send_json(200, job.as_dict())
        elif tail == "result":
            if job.state != DONE:
                self._send_json(
                    409,
                    {"error": "not-done", "detail": f"job is {job.state}",
                     "job": job.as_dict()},
                )
            else:
                # Exactly the document `hiss-experiments ... --json` writes.
                self._send_json(200, job.results, indent=2)
        elif tail == "trace":
            if query.get("format", ["spans"])[0] == "chrome":
                self._send_json(200, build_stitched_trace(job))
            else:
                self._send_json(200, build_trace_document(job))
        elif tail == "profile":
            if not job.spec.profile:
                self._send_json(
                    409,
                    {"error": "not-profiled",
                     "detail": "job was not submitted with profile: true",
                     "job": job.as_dict()},
                )
            elif job.state != DONE:
                self._send_json(
                    409,
                    {"error": "not-done", "detail": f"job is {job.state}",
                     "job": job.as_dict()},
                )
            else:
                from ..profiling import BUNDLE_SCHEMA

                # Workers finish in pool order; sort for a stable document.
                runs = sorted(
                    job.profiles, key=lambda doc: str(doc.get("run", ""))
                )
                self._send_json(
                    200,
                    {
                        "schema": BUNDLE_SCHEMA,
                        "meta": {
                            "job": job.id,
                            "trace_id": job.trace_id,
                            "spec": job.spec.as_dict(),
                        },
                        "runs": runs,
                    },
                )
        else:
            self._send_json(404, {"error": "not-found", "detail": rest})

    def do_POST(self) -> None:  # noqa: N802
        service = self.service
        service.metrics.counter("service.http.requests").inc()
        path = urlparse(self.path).path.rstrip("/")
        if path == "/v1/postmortems/trigger":
            self._post_postmortem_trigger()
            return
        if path != "/v1/jobs":
            self._send_json(404, {"error": "not-found", "detail": path})
            return
        try:
            doc = self._read_json_body()
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": "bad-json", "detail": str(exc)})
            return
        status, body, headers = service.submit_document(
            doc, trace_id=self.headers.get(TRACE_HEADER)
        )
        self._send_json(status, body, headers=headers)

    def _post_postmortem_trigger(self) -> None:
        service = self.service
        if service.flight is None:
            self._send_json(
                404,
                {"error": "postmortem-disabled",
                 "detail": "start the daemon with --postmortem-dir "
                 "to enable the flight recorder"},
            )
            return
        try:
            body = self._read_json_body() or {}
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": "bad-json", "detail": str(exc)})
            return
        reason = str(body.get("reason") or "operator request")
        jobs = body.get("jobs") or []
        if not isinstance(jobs, list):
            self._send_json(
                400, {"error": "bad-spec", "detail": "'jobs' must be a list"}
            )
            return
        doc = service.flight.trigger_manual(
            reason=reason, jobs=[str(job) for job in jobs]
        )
        if doc is None:
            self._send_json(
                429,
                {"error": "rate-limited",
                 "detail": "manual trigger debounced or over its hourly cap"},
            )
            return
        self._send_json(
            201,
            {"postmortem": {"id": doc["id"],
                            "captured_s": doc["captured_s"],
                            "trigger": doc["trigger"]}},
        )

    def do_DELETE(self) -> None:  # noqa: N802
        service = self.service
        service.metrics.counter("service.http.requests").inc()
        path = urlparse(self.path).path.rstrip("/")
        if not path.startswith("/v1/jobs/"):
            self._send_json(404, {"error": "not-found", "detail": path})
            return
        job_id = path[len("/v1/jobs/"):]
        job = service.store.get(job_id)
        if job is None:
            self._send_json(404, {"error": "unknown-job", "detail": job_id})
        elif job.state not in TERMINAL_STATES:
            self._send_json(
                409, {"error": "not-terminal", "detail": f"job is {job.state}"}
            )
        else:
            service.store.evict(job_id)
            service.metrics.counter("service.jobs.evicted_by_client").inc()
            self._send_json(200, {"evicted": job_id})
