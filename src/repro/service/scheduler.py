"""The job scheduler: batch queued jobs onto the parallel run engine.

One background thread drains the admission queue in batches.  Each batch
is served exactly the way ``hiss-experiments --jobs N`` serves a CLI
invocation:

1. every job was already *planned* at submission time (run keys recorded
   via :func:`repro.core.experiment.planning`), so the batch's union of
   keys is known without simulating;
2. keys no cache level satisfies are fanned out through
   :func:`repro.core.planner.execute_runs` — the same persistent warm
   worker pool (:mod:`repro.core.pool`), the same :func:`simulate_run`,
   so a served result is bit-for-bit the CLI's result, and the second
   batch of a daemon's life spawns zero new processes;
3. each job then *replays* its experiments (all ``run_workloads`` calls
   are now cache hits) to assemble its tables.

Batching means ten queued jobs that share baselines — most do — cost one
simulation pass, and a fully warm job completes without simulating at
all.  The cost model's predicted core-seconds are charged to the
:class:`~repro.service.admission.ServiceGovernor` *before* a batch
executes (admission feels the load while it is in flight) and trued up
with the actual residual afterwards.  A run that fails — worker
exception or death — fails only the jobs that planned it; batch
siblings complete.

Planning mode and replay both use the process-global memo/planning state
in :mod:`repro.core.experiment`, which is not reentrant; ``_PLAN_LOCK``
serializes every such section across request threads and the scheduler.
"""

from __future__ import annotations

import hashlib
import threading
import time
import traceback
from typing import Callable, List, Optional, Tuple

from ..core import experiment as _experiment
from ..core.planner import execute_runs, plan_runs, resolve_jobs, run_label
from ..core.runcache import RunKey, cost_model, run_key_digest
from ..telemetry import MetricsRegistry, Tracer
from .admission import AdmissionController, ServiceGovernor
from .jobs import CANCELLED, DONE, FAILED, RUNNING, Job, JobStore
from .obs import OpsLog, sim_event_dict

__all__ = ["JobScheduler", "dedupe_key_for", "plan_spec"]

#: Serializes use of the non-reentrant planning/replay machinery.
_PLAN_LOCK = threading.Lock()


def plan_spec(spec) -> Tuple[List[RunKey], List[str]]:
    """Plan a job spec into ``(ordered run keys, serial-only experiments)``.

    Costs milliseconds (planning mode never simulates), so the submission
    path can afford it per request — it is what makes RunKey-level dedupe
    and the warm-cache fast path possible before a job is even queued.
    """
    from ..experiments.common import REGISTRY, UNPLANNABLE
    from ..experiments.run_all import experiment_kwargs

    def kwargs_for(experiment_id: str) -> dict:
        return experiment_kwargs(
            experiment_id, quick=spec.quick, horizon_ms=spec.horizon_ms
        )

    with _PLAN_LOCK:
        return plan_runs(
            spec.experiments, kwargs_for, registry=REGISTRY, unplannable=UNPLANNABLE
        )


def dedupe_key_for(spec, run_keys: List[RunKey]) -> str:
    """Digest identifying a submission's work: spec + planned run keys.

    Folding in :func:`run_key_digest` (which already covers the code
    fingerprint) means the key changes when the simulator does — after a
    reload plus :func:`repro.core.reset_code_fingerprint`, stale twins
    stop matching automatically.
    """
    digest = hashlib.sha256()
    digest.update(spec.canonical_json().encode("utf-8"))
    for key in run_keys:
        digest.update(run_key_digest(key).encode("utf-8"))
    return digest.hexdigest()


class JobScheduler:
    """Background drain loop: admission queue -> parallel engine -> store."""

    def __init__(
        self,
        store: JobStore,
        admission: AdmissionController,
        metrics: MetricsRegistry,
        jobs: int = 1,
        governor: Optional[ServiceGovernor] = None,
        poll_s: float = 0.2,
        clock: Callable[[], float] = time.time,
        trace: bool = True,
        trace_capacity: int = 100_000,
        trace_events_per_run: int = 4000,
        ops_log: Optional[OpsLog] = None,
        warm: Optional[bool] = None,
        flight=None,
    ):
        self.store = store
        self.admission = admission
        self.metrics = metrics
        self.jobs = jobs
        self.governor = governor
        self.poll_s = poll_s
        self._clock = clock
        #: ``False`` forces the cold per-batch executor; ``None`` follows
        #: the ``HISS_POOL`` environment default (warm).
        self.warm = warm
        #: Capture each run's in-sim event stream in the pool workers and
        #: attach it to the jobs that planned the run.  Span/timestamp
        #: bookkeeping happens regardless; this only gates event capture.
        self.trace = trace
        self.trace_capacity = trace_capacity
        #: Per-run cap on events stored into a job (ring saturation is
        #: reported, never silent — see ``service.trace.dropped_events``).
        self.trace_events_per_run = trace_events_per_run
        #: In-sim events dropped by worker rings or the per-run cap.
        self.trace_dropped = 0
        self.ops_log = ops_log if ops_log is not None else OpsLog(None)
        #: Flight recorder; when set, each executed run's event tail and
        #: sampler rows land in the diagnostics ring for postmortems.
        self.flight = flight
        self._thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._drain = True
        self._paused = threading.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            raise RuntimeError("scheduler already started")
        self._thread = threading.Thread(
            target=self._loop, name="hiss-scheduler", daemon=True
        )
        self._thread.start()

    def pause(self) -> None:
        """Stop taking batches (queued jobs wait); used by tests/operators."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def stop(self, drain: bool = True, timeout_s: Optional[float] = None) -> None:
        """Shut the loop down; with ``drain`` finish every queued job first.

        Without ``drain``, still-queued jobs are marked ``cancelled`` so
        no client is left polling a job that will never run.
        """
        self._drain = drain
        self._stopping.set()
        self.resume()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
        if not drain:
            for job_id in self.admission.take_batch(timeout_s=0):
                self._cancel(job_id)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            if self._paused.is_set() and not self._stopping.is_set():
                time.sleep(0.01)
                continue
            batch = self.admission.take_batch(timeout_s=self.poll_s)
            if batch and self._paused.is_set() and not self._stopping.is_set():
                # Paused while blocked in take_batch: hand the batch back.
                self.admission.requeue_front(batch)
                continue
            if not batch:
                self.store.evict_expired()
                if self._stopping.is_set():
                    return
                continue
            if self._stopping.is_set() and not self._drain:
                for job_id in batch:
                    self._cancel(job_id)
                continue
            try:
                self._run_batch(batch)
            except BaseException:  # never let the drain thread die silently
                self.metrics.counter("service.scheduler.batch_errors").inc()
                for job_id in batch:
                    job = self.store.get(job_id)
                    if job is not None and job.state == RUNNING:
                        self._finish(job, FAILED, error=traceback.format_exc(limit=20))

    def _cancel(self, job_id: str) -> None:
        job = self.store.get(job_id)
        if job is not None and job.state not in (DONE, FAILED):
            self._finish(job, CANCELLED, error="cancelled at shutdown")

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        job.state = state
        job.error = error
        job.finished_s = self._clock()
        counter = {
            DONE: "service.jobs.completed",
            FAILED: "service.jobs.failed",
            CANCELLED: "service.jobs.cancelled",
        }[state]
        self.metrics.counter(counter).inc()
        e2e_s = None
        if job.created_s:
            e2e_s = max(0.0, job.finished_s - job.created_s)
            self.metrics.histogram(
                "service.job.e2e_s", low=1e-3, high=1e4, growth=1.5
            ).record(e2e_s)
        self.ops_log.log(
            f"job.{state}", trace=job.trace_id, job=job.id, e2e_s=e2e_s,
            runs_cached=job.runs_cached, runs_executed=job.runs_executed,
            error=error,
        )

    def _run_batch(self, job_ids: List[str]) -> None:
        started = time.monotonic()
        jobs = [j for j in (self.store.get(i) for i in job_ids) if j is not None]
        if not jobs:
            return
        self.ops_log.log("batch.start", jobs=[j.id for j in jobs])
        # Union of not-yet-cached keys across the batch, submission order.
        # A profiled job forces *all* of its keys into the fan-out (a
        # profile only exists for an executed run), so its cache hits are
        # deliberately re-simulated — with attribution on.
        pending: List[RunKey] = []
        seen = set()
        needed_by: dict = {}  # RunKey -> jobs in this batch that planned it
        profile_keys: set = set()
        for job in jobs:
            job.state = RUNNING
            job.started_s = self._clock()
            job.batch_size = len(jobs)
            if job.created_s:
                self.metrics.histogram(
                    "service.job.queue_wait_s", low=1e-3, high=1e4, growth=1.5
                ).record(max(0.0, job.started_s - job.created_s))
            self.ops_log.log(
                "job.started", trace=job.trace_id, job=job.id,
                batch_jobs=len(jobs), planned_runs=len(job.run_keys),
                profile=job.spec.profile,
            )
            cached = 0
            for key in job.run_keys:
                if _experiment.cache_lookup(key) is not None and not job.spec.profile:
                    cached += 1
                    continue
                needed_by.setdefault(key, []).append(job)
                if job.spec.profile:
                    profile_keys.add(key)
                if key not in seen:
                    seen.add(key)
                    pending.append(key)
            job.runs_cached = cached
            job.runs_executed = len(job.run_keys) - cached

        # Charge the cost model's batch estimate to the governor *now* —
        # admission starts back-pressuring while the batch is in flight,
        # not one batch later.  After execution only the residual
        # (actual - predicted, floored at 0) is added, so nothing is
        # counted twice.
        predicted_core_s = 0.0
        if self.governor is not None and pending:
            model = cost_model()
            predicted_core_s = sum(model.predict(key) for key in pending)
            self.governor.note_predicted(predicted_core_s)

        report = self._execute_batch(pending, needed_by, profile_keys)
        exec_done_s = self._clock()
        self.metrics.counter("service.runs.executed").inc(report.executed)
        self.metrics.counter("service.runs.cache_hits").inc(
            sum(job.runs_cached for job in jobs)
        )
        if report.failed:
            self.metrics.counter("service.runs.failed").inc(len(report.failed))
        if self.governor is not None and report.executed:
            used = min(resolve_jobs(self.jobs), report.executed)
            self.governor.note_busy(
                max(0.0, report.execute_s * used - predicted_core_s)
            )
        self.ops_log.log(
            "batch.executed", runs=report.executed, execute_s=report.execute_s,
            workers=report.workers, failed=len(report.failed),
            predicted_core_s=round(predicted_core_s, 3),
        )
        failed_keys = {key: error for key, error in report.failed}

        from ..experiments.common import run_experiment
        from ..experiments.run_all import experiment_kwargs

        for job in jobs:
            job.exec_done_s = exec_done_s
            job.render_start_s = self._clock()
            if job.sim_runs:
                sim_s = sum(
                    run["wall_end_s"] - run["wall_start_s"]
                    for run in job.sim_runs
                )
                self.metrics.histogram(
                    "service.job.sim_s", low=1e-3, high=1e4, growth=1.5
                ).record(max(0.0, sim_s))
            # A job whose planned runs include a failed key can never
            # assemble its tables — fail it with the worker's traceback.
            # Sibling jobs in the batch are untouched: their runs all
            # completed (crash isolation), so they proceed normally.
            broken = [key for key in job.run_keys if key in failed_keys]
            if broken:
                first = broken[0]
                self._finish(job, FAILED, error=(
                    f"{len(broken)} of {len(job.run_keys)} planned runs "
                    f"failed; first ({run_label(first)}):\n"
                    f"{failed_keys[first]}"
                ))
                continue
            try:
                with _PLAN_LOCK:
                    results = [
                        run_experiment(
                            experiment_id,
                            **experiment_kwargs(
                                experiment_id,
                                quick=job.spec.quick,
                                horizon_ms=job.spec.horizon_ms,
                            ),
                        )
                        for experiment_id in job.spec.experiments
                    ]
            except Exception:
                self._finish(job, FAILED, error=traceback.format_exc(limit=20))
                continue
            job.results = [result.as_dict() for result in results]
            self._finish(job, DONE)
        self.admission.note_service_time((time.monotonic() - started) / len(jobs))

    def _execute_batch(
        self, pending: List[RunKey], needed_by: dict, profile_keys: set
    ):
        """Fan the batch's runs out, threading span context through workers.

        Every run carries the trace ids of the jobs that planned it across
        the process boundary; the worker stamps its wall-clock window (and,
        with tracing on, its in-sim event stream) onto that context, and
        the merge here attaches the result to each interested job.  Keys
        in ``profile_keys`` come back with an attribution document, which
        lands on the ``profiles`` of every interested job that asked.
        """
        tracer = Tracer(capacity=self.trace_capacity) if self.trace else None

        def span_context_for(key: RunKey):
            return {
                "run": run_label(key),
                "trace_ids": [job.trace_id for job in needed_by.get(key, [])],
            }

        def on_run(key: RunKey, events, info) -> None:
            if info is None:
                return
            profile_doc = info.pop("profile", None)
            cap = self.trace_events_per_run
            serialized = None
            if events is not None:
                serialized = [sim_event_dict(event) for event in events[:cap]]
                overflow = max(0, len(events) - cap)
                dropped = int(info.get("events_dropped", 0)) + overflow
                info["events_dropped"] = dropped
                if dropped:
                    self.trace_dropped += dropped
                    self.metrics.counter("service.trace.dropped_events").inc(dropped)
            for job in needed_by.get(key, []):
                run_doc = dict(info)
                run_doc["events"] = serialized
                job.sim_runs.append(run_doc)
                if profile_doc is not None and job.spec.profile:
                    job.profiles.append(profile_doc)
            if self.flight is not None:
                self.flight.note_run(info, serialized, profile_doc)
            self.ops_log.log(
                "run.executed", run=info.get("run"),
                traces=info.get("trace_ids"), worker_pid=info.get("worker_pid"),
                wall_s=round(info["wall_end_s"] - info["wall_start_s"], 6),
                profiled=profile_doc is not None,
            )

        report = execute_runs(
            pending,
            jobs=self.jobs,
            tracer=tracer,
            span_context_for=span_context_for,
            on_run=on_run,
            profile_keys=profile_keys,
            warm=self.warm,
            events_per_run=self.trace_events_per_run if self.trace else None,
        )
        if tracer is not None and tracer.dropped:
            self.trace_dropped += tracer.dropped
            self.metrics.counter("service.trace.dropped_events").inc(tracer.dropped)
        return report
