"""Stdlib client for the simulation service, plus the ``hiss-client`` CLI.

:class:`ServiceClient` wraps the JSON API in plain method calls;
:func:`ServiceClient.submit_with_backoff` is the client half of the
paper's protocol — when the daemon answers 429, the client *honors the
hint* and retries after the advertised delay instead of hammering, which
is exactly how the bounded-queue + back-off pair converts overload into
latency rather than collapse.

CLI::

    hiss-client --url http://host:port submit fig4 --quick --wait
    hiss-client status job-000001-abcdef0123
    hiss-client result job-000001-abcdef0123
    hiss-client trace job-000001-abcdef0123 [--chrome]
    hiss-client profile job-000001-abcdef0123 [-o profile.json]
    hiss-client experiments | jobs | health | metrics [--text] | ops | alerts
    hiss-client postmortems
    hiss-client postmortem pm-000001-slo_alert [-o pm.json]

``submit --profile`` asks the daemon to attribute every run's SSR
interference; fetch the bundle with ``profile`` and render it locally
with ``hiss-report render profile.json -o report.html``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ServiceClient", "ServiceError", "ServiceRejected", "main"]

DEFAULT_URL = "http://127.0.0.1:8171"

#: Mirrors ``repro.service.server.TRACE_HEADER`` (kept literal: the client
#: must work against a remote daemon without importing server code).
TRACE_HEADER = "X-Hiss-Trace-Id"


def _body_trace_id(body: Any) -> Optional[str]:
    return body.get("trace_id") if isinstance(body, dict) else None


class ServiceError(Exception):
    """Any non-2xx response (except 429, which raises the subclass).

    The message carries the server-assigned trace id when the response
    body has one, so an error a user pastes into a bug report is already
    greppable in the daemon's JSONL ops log.
    """

    def __init__(self, status: int, body: Any):
        detail = body.get("detail") if isinstance(body, dict) else body
        trace_id = _body_trace_id(body)
        message = f"HTTP {status}: {detail}"
        if trace_id:
            message += f" [trace {trace_id}]"
        super().__init__(message)
        self.status = status
        self.body = body
        self.trace_id = trace_id


class ServiceRejected(ServiceError):
    """Admission refused the job (429); carries the server's retry hint."""

    def __init__(self, status: int, body: Any, retry_after_s: float):
        super().__init__(status, body)
        self.retry_after_s = retry_after_s
        self.reason = body.get("error") if isinstance(body, dict) else "rejected"


class ServiceClient:
    def __init__(self, base_url: str = DEFAULT_URL, timeout_s: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
        timeout_s: Optional[float] = None,
    ) -> Tuple[int, Dict[str, str], Any]:
        data = None
        all_headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            all_headers["Content-Type"] = "application/json"
        if headers:
            all_headers.update(headers)
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=all_headers, method=method
        )
        timeout = self.timeout_s if timeout_s is None else timeout_s
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                raw = response.read()
                return response.status, dict(response.headers), _parse(raw)
        except urllib.error.HTTPError as error:
            raw = error.read()
            parsed = _parse(raw)
            if error.code == 429:
                retry_after = float(
                    error.headers.get("Retry-After")
                    or (parsed or {}).get("retry_after_s", 1.0)
                )
                raise ServiceRejected(error.code, parsed, retry_after) from None
            raise ServiceError(error.code, parsed) from None

    def _get(self, path: str, timeout_s: Optional[float] = None) -> Any:
        _status, _headers, parsed = self._request("GET", path, timeout_s=timeout_s)
        return parsed

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def submit(
        self,
        experiments: List[str],
        quick: bool = False,
        horizon_ms: Optional[float] = None,
        trace_id: Optional[str] = None,
        profile: bool = False,
    ) -> Dict[str, Any]:
        """Submit once; returns the submission body (``body["job"]["id"]``).

        ``trace_id`` (normally the one a previous 429 assigned) rides the
        ``X-Hiss-Trace-Id`` header, so the server threads every back-off
        round into the eventual job's trace.  ``profile`` asks for
        per-run interference attribution (fetch with :meth:`profile`).
        Raises :class:`ServiceRejected` when admission refuses.
        """
        doc: Dict[str, Any] = {"experiments": list(experiments), "quick": quick}
        if horizon_ms is not None:
            doc["horizon_ms"] = horizon_ms
        if profile:
            doc["profile"] = True
        headers = {TRACE_HEADER: trace_id} if trace_id else None
        _status, _headers, parsed = self._request(
            "POST", "/v1/jobs", doc, headers=headers
        )
        return parsed

    def submit_with_backoff(
        self,
        experiments: List[str],
        quick: bool = False,
        horizon_ms: Optional[float] = None,
        give_up_after_s: float = 300.0,
        sleep=time.sleep,
        profile: bool = False,
    ) -> Dict[str, Any]:
        """Submit, sleeping out each 429's ``Retry-After`` until accepted.

        The first rejection's server-assigned trace id is resent on every
        retry, so the accepted job's trace shows each round it sat out.
        """
        deadline = time.monotonic() + give_up_after_s
        trace_id: Optional[str] = None
        while True:
            try:
                return self.submit(
                    experiments, quick=quick, horizon_ms=horizon_ms,
                    trace_id=trace_id, profile=profile,
                )
            except ServiceRejected as rejection:
                trace_id = rejection.trace_id or trace_id
                if time.monotonic() + rejection.retry_after_s > deadline:
                    raise
                sleep(rejection.retry_after_s)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._get(f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> List[dict]:
        return self._get(f"/v1/jobs/{job_id}/result")

    def trace(self, job_id: str, chrome: bool = False) -> Dict[str, Any]:
        """One job's lifecycle trace: span JSON, or the Chrome-trace form."""
        suffix = "?format=chrome" if chrome else ""
        return self._get(f"/v1/jobs/{job_id}/trace{suffix}")

    def profile(self, job_id: str) -> Dict[str, Any]:
        """One finished job's interference-attribution bundle
        (``hiss.profile/1``; the job must have been submitted with
        ``profile=True``).  Render with ``hiss-report``."""
        return self._get(f"/v1/jobs/{job_id}/profile")

    def ops(self) -> Dict[str, Any]:
        """The ``/v1/ops`` snapshot (what ``hiss-top`` renders)."""
        return self._get("/v1/ops")

    def alerts(self) -> Dict[str, Any]:
        """The SLO engine's ``/v1/alerts`` document (daemon must run
        with ``--slo``; render with ``hiss-slo alerts``)."""
        return self._get("/v1/alerts")

    def postmortems(self) -> Dict[str, Any]:
        """The flight recorder's ``/v1/postmortems`` index (daemon must
        run with ``--postmortem-dir``)."""
        return self._get("/v1/postmortems")

    def postmortem(self, pm_id: str) -> Dict[str, Any]:
        """One stored postmortem bundle (``hiss.postmortem/1``; render
        with ``hiss-postmortem render``)."""
        return self._get(f"/v1/postmortems/{pm_id}")

    def trigger_postmortem(
        self, reason: str = "operator request", jobs: Optional[List[str]] = None
    ) -> Dict[str, Any]:
        """Capture a bundle on demand (``POST /v1/postmortems/trigger``).

        Raises :class:`ServiceRejected` when the manual trigger is over
        its hourly rate cap.
        """
        body: Dict[str, Any] = {"reason": reason}
        if jobs:
            body["jobs"] = list(jobs)
        _status, _headers, parsed = self._request(
            "POST", "/v1/postmortems/trigger", body
        )
        return parsed

    def wait(
        self, job_id: str, timeout_s: float = 600.0, poll_s: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns its doc."""
        deadline = time.monotonic() + timeout_s
        while True:
            doc = self.status(job_id)
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {doc['state']}")
            time.sleep(poll_s)

    def jobs(self) -> Dict[str, Any]:
        return self._get("/v1/jobs")

    def experiments(self) -> Dict[str, Any]:
        return self._get("/v1/experiments")

    def health(self) -> Dict[str, Any]:
        return self._get("/healthz")

    def metrics(self, text: bool = False) -> Any:
        return self._get("/metrics?format=text" if text else "/metrics")

    def evict(self, job_id: str) -> Dict[str, Any]:
        _status, _headers, parsed = self._request("DELETE", f"/v1/jobs/{job_id}")
        return parsed


def _parse(raw: bytes) -> Any:
    if not raw:
        return None
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return raw.decode("utf-8", errors="replace")


def _print_json(doc: Any) -> None:
    if isinstance(doc, str):
        print(doc, end="" if doc.endswith("\n") else "\n")
    else:
        print(json.dumps(doc, indent=2))


def main(argv: Optional[List[str]] = None) -> int:
    from ..version import add_version_flag

    parser = argparse.ArgumentParser(
        prog="hiss-client", description="Talk to a hiss-serve simulation daemon."
    )
    add_version_flag(parser)
    parser.add_argument("--url", default=DEFAULT_URL, help=f"server URL (default {DEFAULT_URL})")
    parser.add_argument("--timeout", type=float, default=30.0, help="per-request timeout (s)")
    commands = parser.add_subparsers(dest="command", required=True)

    submit = commands.add_parser("submit", help="submit experiments as one job")
    submit.add_argument("experiments", nargs="+", help="experiment ids (e.g. fig4)")
    submit.add_argument("--quick", action="store_true", help="reduced workload grid")
    submit.add_argument("--horizon-ms", type=float, default=None)
    submit.add_argument(
        "--profile", action="store_true",
        help="attribute every run's SSR interference server-side "
        "(fetch with 'hiss-client profile', render with hiss-report)",
    )
    submit.add_argument(
        "--wait", action="store_true", help="poll until the job finishes, print its result"
    )
    submit.add_argument(
        "--wait-timeout", type=float, default=600.0, help="--wait limit in seconds"
    )
    submit.add_argument(
        "--no-backoff", action="store_true",
        help="fail immediately on 429 instead of honoring Retry-After",
    )

    for name, help_text in [
        ("status", "print one job's status document"),
        ("result", "print one finished job's result JSON"),
        ("trace", "print one job's lifecycle trace (span JSON)"),
        ("profile", "print one finished job's interference-attribution bundle"),
        ("wait", "poll one job until it finishes"),
        ("evict", "evict one terminal job before its TTL"),
    ]:
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("job_id")
        if name == "wait":
            sub.add_argument("--wait-timeout", type=float, default=600.0)
        if name == "trace":
            sub.add_argument(
                "--chrome", action="store_true",
                help="stitched chrome://tracing export instead of span JSON",
            )
        if name == "profile":
            sub.add_argument(
                "-o", "--output", default=None, metavar="FILE",
                help="write the bundle to FILE instead of stdout "
                "(then: hiss-report render FILE -o report.html)",
            )

    commands.add_parser("jobs", help="list live jobs")
    commands.add_parser("experiments", help="list servable experiments")
    commands.add_parser("health", help="print /healthz")
    commands.add_parser("ops", help="print the /v1/ops snapshot")
    commands.add_parser("alerts", help="print the /v1/alerts SLO document")
    commands.add_parser("postmortems", help="list the daemon's postmortem bundles")
    postmortem = commands.add_parser(
        "postmortem", help="fetch one postmortem bundle"
    )
    postmortem.add_argument("pm_id", help="bundle id (see 'postmortems')")
    postmortem.add_argument(
        "-o", "--output", default=None, metavar="FILE",
        help="write the bundle to FILE instead of stdout (then: "
        "hiss-postmortem render FILE -o report.html)",
    )
    metrics = commands.add_parser("metrics", help="print /metrics")
    metrics.add_argument("--text", action="store_true", help="flat text exposition")

    args = parser.parse_args(argv)
    client = ServiceClient(args.url, timeout_s=args.timeout)
    try:
        if args.command == "submit":
            if args.no_backoff:
                body = client.submit(
                    args.experiments, quick=args.quick,
                    horizon_ms=args.horizon_ms, profile=args.profile,
                )
            else:
                body = client.submit_with_backoff(
                    args.experiments, quick=args.quick,
                    horizon_ms=args.horizon_ms, profile=args.profile,
                )
            if not args.wait:
                _print_json(body)
                return 0
            job_id = body["job"]["id"]
            doc = client.wait(job_id, timeout_s=args.wait_timeout)
            if doc["state"] != "done":
                _print_json(doc)
                return 1
            _print_json(doc)
            _print_json(client.result(job_id))
            return 0
        if args.command == "status":
            _print_json(client.status(args.job_id))
        elif args.command == "result":
            _print_json(client.result(args.job_id))
        elif args.command == "trace":
            _print_json(client.trace(args.job_id, chrome=args.chrome))
        elif args.command == "profile":
            bundle = client.profile(args.job_id)
            if args.output:
                with open(args.output, "w") as handle:
                    json.dump(bundle, handle)
                runs = len(bundle.get("runs", []))
                print(
                    f"wrote {args.output} ({runs} run profile(s); render "
                    f"with 'hiss-report render {args.output} -o report.html')"
                )
            else:
                _print_json(bundle)
        elif args.command == "ops":
            _print_json(client.ops())
        elif args.command == "alerts":
            _print_json(client.alerts())
        elif args.command == "postmortems":
            _print_json(client.postmortems())
        elif args.command == "postmortem":
            bundle = client.postmortem(args.pm_id)
            if args.output:
                with open(args.output, "w") as handle:
                    json.dump(bundle, handle)
                ring = (bundle.get("flight_ring") or {}).get("entries") or []
                print(
                    f"wrote {args.output} ({len(ring)} ring entries; render "
                    f"with 'hiss-postmortem render {args.output} -o report.html')"
                )
            else:
                _print_json(bundle)
        elif args.command == "wait":
            doc = client.wait(args.job_id, timeout_s=args.wait_timeout)
            _print_json(doc)
            return 0 if doc["state"] == "done" else 1
        elif args.command == "evict":
            _print_json(client.evict(args.job_id))
        elif args.command == "jobs":
            _print_json(client.jobs())
        elif args.command == "experiments":
            _print_json(client.experiments())
        elif args.command == "health":
            _print_json(client.health())
        elif args.command == "metrics":
            _print_json(client.metrics(text=args.text))
        return 0
    except ServiceRejected as rejection:
        print(
            f"rejected ({rejection.reason}): retry after "
            f"{rejection.retry_after_s:.1f}s",
            file=sys.stderr,
        )
        return 2
    except (ServiceError, TimeoutError, urllib.error.URLError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
