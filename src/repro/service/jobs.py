"""Job model for the simulation service: specs, lifecycle, and the store.

A *job* is one client submission — a list of registered experiments plus
the grid options the CLI would take (``--quick``, ``--horizon-ms``).  The
submission path plans the job into the parallel engine's run keys
(:mod:`repro.service.scheduler`), and the resulting *dedupe key* — a
digest over the spec and its planned :data:`~repro.core.runcache.RunKey`
set — collapses duplicate submissions onto the same live job, so a
thousand identical clients cost one simulation pass.

The :class:`JobStore` is the single source of truth for job state.  It is
lock-protected (HTTP request threads and the scheduler thread share it)
and evicts terminal jobs after a TTL so a long-lived daemon's memory is
bounded by its traffic, not its uptime.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.runcache import RunKey
from ..telemetry.spans import new_trace_id

__all__ = [
    "BadSpec",
    "Job",
    "JobSpec",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]

#: Job lifecycle states (queued -> running -> done | failed | cancelled).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: Spec fields a submission document may carry.
_SPEC_FIELDS = frozenset(
    {"experiment", "experiments", "quick", "horizon_ms", "profile"}
)


class BadSpec(ValueError):
    """A submission document that cannot become a job (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """What the client asked for, normalized to the CLI's vocabulary."""

    experiments: Tuple[str, ...]
    quick: bool = False
    horizon_ms: Optional[float] = None
    #: Attribute every run (interference ledger + sim-time samples) and
    #: serve the bundle at ``GET /v1/jobs/<id>/profile``.  Profiled runs
    #: are simulated even when cached — a profile only exists for an
    #: executed run — so this trades cache hits for attribution.
    profile: bool = False

    @classmethod
    def from_document(cls, doc: Any, registry: Dict[str, Callable]) -> "JobSpec":
        """Validate a JSON submission document into a spec.

        Raises :class:`BadSpec` with a client-actionable message on any
        problem; never lets an unknown field pass silently.
        """
        if not isinstance(doc, dict):
            raise BadSpec("job spec must be a JSON object")
        unknown = set(doc) - _SPEC_FIELDS
        if unknown:
            raise BadSpec(
                f"unknown spec field(s) {sorted(unknown)}; "
                f"allowed: {sorted(_SPEC_FIELDS)}"
            )
        experiments = doc.get("experiments")
        if experiments is None and "experiment" in doc:
            experiments = [doc["experiment"]]
        if not isinstance(experiments, (list, tuple)) or not experiments:
            raise BadSpec("spec needs 'experiment' or a non-empty 'experiments' list")
        for experiment_id in experiments:
            if not isinstance(experiment_id, str) or experiment_id not in registry:
                raise BadSpec(
                    f"unknown experiment {experiment_id!r}; known: {sorted(registry)}"
                )
        quick = doc.get("quick", False)
        if not isinstance(quick, bool):
            raise BadSpec(f"'quick' must be a boolean, got {quick!r}")
        horizon_ms = doc.get("horizon_ms")
        if horizon_ms is not None:
            if not isinstance(horizon_ms, (int, float)) or isinstance(horizon_ms, bool):
                raise BadSpec(f"'horizon_ms' must be a number, got {horizon_ms!r}")
            horizon_ms = float(horizon_ms)
            if horizon_ms <= 0:
                raise BadSpec(f"'horizon_ms' must be positive, got {horizon_ms}")
        profile = doc.get("profile", False)
        if not isinstance(profile, bool):
            raise BadSpec(f"'profile' must be a boolean, got {profile!r}")
        return cls(tuple(experiments), quick, horizon_ms, profile)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "experiments": list(self.experiments),
            "quick": self.quick,
            "horizon_ms": self.horizon_ms,
            "profile": self.profile,
        }

    def canonical_json(self) -> str:
        """Byte-stable rendering (one input to the dedupe digest)."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))


@dataclass
class Job:
    """One accepted submission and everything learned while serving it."""

    id: str
    spec: JobSpec
    dedupe_key: str
    #: Ordered, deduplicated run keys the planner recorded for this spec.
    run_keys: List[RunKey] = field(default_factory=list)
    #: Experiments in the spec the planner cannot pre-plan (run serially).
    serial_only: List[str] = field(default_factory=list)
    state: str = QUEUED
    #: End-to-end correlation id: server-assigned at submission, carried
    #: across back-off rounds, into pool workers, and through the JSONL log.
    trace_id: str = ""
    created_s: float = 0.0
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    # -- trace timestamps (wall clock; stamped by server/scheduler) -----
    #: When the accepting HTTP request began handling this submission.
    received_s: Optional[float] = None
    #: Wall-clock cost of planning the spec on the request thread.
    plan_elapsed_s: float = 0.0
    #: 429 rounds this trace sat out before admission
    #: (``{received_s, rejected_s, reason, retry_after_s}`` each).
    backoff_rounds: List[dict] = field(default_factory=list)
    #: When the batch's run fan-out finished / this job's render began.
    exec_done_s: Optional[float] = None
    render_start_s: Optional[float] = None
    #: How many jobs shared the batch that served this one.
    batch_size: int = 0
    #: Runs pool workers simulated on this job's behalf: per run the
    #: wall-clock window, worker pid, span context, and (tracing on) the
    #: captured in-sim event stream.
    sim_runs: List[dict] = field(default_factory=list)
    #: With ``spec.profile``, one ``hiss.profile.run/1`` document per
    #: simulated run (served as a bundle at ``/v1/jobs/<id>/profile``).
    profiles: List[dict] = field(default_factory=list)
    #: Of the planned runs, how many were already cached when it started.
    runs_cached: int = 0
    #: How many runs its batch had to simulate on its behalf.
    runs_executed: int = 0
    #: How many times clients submitted this work (1 = no duplicates).
    submissions: int = 1
    error: Optional[str] = None
    #: The CLI-equivalent ``--json`` document (list of result dicts).
    results: Optional[List[dict]] = None

    def as_dict(self) -> Dict[str, Any]:
        """The status document ``GET /v1/jobs/<id>`` serves."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "state": self.state,
            "trace_id": self.trace_id,
            "spec": self.spec.as_dict(),
            "planned_runs": len(self.run_keys),
            "runs_cached": self.runs_cached,
            "runs_executed": self.runs_executed,
            "serial_only": list(self.serial_only),
            "submissions": self.submissions,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.state == DONE:
            doc["result_url"] = f"/v1/jobs/{self.id}/result"
        doc["trace_url"] = f"/v1/jobs/{self.id}/trace"
        if self.spec.profile:
            doc["profiled_runs"] = len(self.profiles)
            if self.state == DONE:
                doc["profile_url"] = f"/v1/jobs/{self.id}/profile"
        return doc


class JobStore:
    """Thread-safe registry of jobs with dedupe and TTL eviction."""

    def __init__(self, ttl_s: float = 900.0, clock: Callable[[], float] = time.time):
        self.ttl_s = ttl_s
        self._clock = clock
        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._by_dedupe: Dict[str, str] = {}
        self._seq = itertools.count(1)
        self.evicted = 0

    def submit(
        self,
        spec: JobSpec,
        dedupe_key: str,
        run_keys: List[RunKey],
        serial_only: List[str],
        admit: Callable[[str], None],
        trace_id: Optional[str] = None,
        received_s: Optional[float] = None,
        plan_elapsed_s: float = 0.0,
        backoff_rounds: Optional[List[dict]] = None,
    ) -> Tuple[Job, bool]:
        """Dedupe-or-create under one lock; returns ``(job, deduplicated)``.

        ``admit`` is the admission gate (it enqueues the new job id or
        raises :class:`~repro.service.admission.RejectedJob`); it runs
        *before* the job is indexed, so a rejected submission leaves no
        trace.  A live or completed twin short-circuits admission
        entirely — duplicates are free, exactly the point of deduping.

        The trace fields must land *before* the job is indexed (the
        scheduler thread may batch it the instant ``admit`` notifies), so
        they are arguments here rather than caller-side patches.
        """
        with self._lock:
            self._evict_expired_locked()
            existing_id = self._by_dedupe.get(dedupe_key)
            if existing_id is not None:
                existing = self._jobs.get(existing_id)
                if existing is not None and existing.state not in (FAILED, CANCELLED):
                    existing.submissions += 1
                    return existing, True
            job_id = f"job-{next(self._seq):06d}-{dedupe_key[:10]}"
            admit(job_id)
            job = Job(
                id=job_id,
                spec=spec,
                dedupe_key=dedupe_key,
                run_keys=list(run_keys),
                serial_only=list(serial_only),
                trace_id=trace_id or new_trace_id(),
                created_s=self._clock(),
                received_s=received_s,
                plan_elapsed_s=plan_elapsed_s,
                backoff_rounds=list(backoff_rounds or []),
            )
            self._jobs[job_id] = job
            self._by_dedupe[dedupe_key] = job_id
            return job, False

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            self._evict_expired_locked()
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            self._evict_expired_locked()
            return sorted(self._jobs.values(), key=lambda j: j.id)

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (the ``/metrics`` gauges)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    def evict(self, job_id: str) -> bool:
        """Forcibly remove one job (any state); returns whether it existed."""
        with self._lock:
            job = self._jobs.pop(job_id, None)
            if job is None:
                return False
            if self._by_dedupe.get(job.dedupe_key) == job_id:
                del self._by_dedupe[job.dedupe_key]
            self.evicted += 1
            return True

    def evict_expired(self) -> int:
        with self._lock:
            return self._evict_expired_locked()

    def _evict_expired_locked(self) -> int:
        if self.ttl_s is None or self.ttl_s <= 0:
            return 0
        now = self._clock()
        expired = [
            job.id
            for job in self._jobs.values()
            if job.state in TERMINAL_STATES
            and job.finished_s is not None
            and now - job.finished_s > self.ttl_s
        ]
        for job_id in expired:
            job = self._jobs.pop(job_id)
            if self._by_dedupe.get(job.dedupe_key) == job_id:
                del self._by_dedupe[job.dedupe_key]
        self.evicted += len(expired)
        return len(expired)
