"""Admission control: bounded queueing and QoS backpressure for the daemon.

The paper's diagnosis is that a host which accepts system service
requests without bound lets a guest starve it; its fix (Section VI) is a
bounded request window plus exponential back-off once servicing exceeds
an administrator's share of CPU time.  The serving daemon applies that
medicine to itself:

* :class:`AdmissionController` — the PPR-queue analogue.  A bounded FIFO
  of accepted job ids; overflow is rejected immediately (HTTP 429 with a
  ``Retry-After`` estimated from the queue's recent drain rate), never
  buffered into an unbounded backlog.
* :class:`ServiceGovernor` — the wall-clock analogue of
  :class:`repro.qos.governor.QosGovernor`.  It tracks the EWMA fraction
  of host capacity (worker-cores × wall time) spent simulating; while the
  fraction exceeds the operator's threshold, each admission attempt is
  refused with an exponentially growing ``Retry-After`` (the Figure 11
  loop — 429s double from ``initial_delay_s`` up to ``max_delay_s``, and
  reset the moment the load falls back under threshold).

Both take an injectable clock so tests can drive them deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional

__all__ = ["AdmissionController", "RejectedJob", "ServiceGovernor"]


class RejectedJob(Exception):
    """An admission refusal (HTTP 429): why, and when to come back."""

    def __init__(self, reason: str, retry_after_s: float):
        super().__init__(f"{reason}: retry after {retry_after_s:.1f}s")
        self.reason = reason
        self.retry_after_s = retry_after_s


class ServiceGovernor:
    """Exponential back-off on admissions while simulation load is high.

    The scheduler reports simulated core-seconds via :meth:`note_busy`;
    the governor folds them into an EWMA utilization sample per elapsed
    ``sample_period_s`` (lazily, on access — no background thread), just
    as the in-simulator governor's kernel sampler does per window.
    """

    def __init__(
        self,
        threshold: float = 0.75,
        capacity_cores: int = 1,
        sample_period_s: float = 0.25,
        window_s: float = 2.0,
        initial_delay_s: float = 0.5,
        max_delay_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity_cores < 1:
            raise ValueError(f"capacity_cores must be >= 1, got {capacity_cores}")
        if not 0.0 <= threshold:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = threshold
        self.capacity_cores = capacity_cores
        self.sample_period_s = sample_period_s
        self.window_s = window_s
        self.initial_delay_s = initial_delay_s
        self.max_delay_s = max_delay_s
        self._clock = clock
        self._lock = threading.Lock()
        self._busy_core_s = 0.0
        self._last_sample_s = clock()
        #: Latest EWMA fraction of capacity spent simulating.
        self.fraction = 0.0
        #: Current back-off delay (0 while under threshold).
        self.delay_s = 0.0
        self.throttle_events = 0
        #: Lifetime total of cost-model predictions charged up front.
        self.predicted_core_s = 0.0

    def note_busy(self, core_seconds: float) -> None:
        """Account simulation work (worker-cores × seconds) to the window."""
        if core_seconds < 0:
            raise ValueError(f"negative core_seconds {core_seconds}")
        with self._lock:
            self._busy_core_s += core_seconds

    def note_predicted(self, core_seconds: float) -> None:
        """Charge a batch's cost-model *prediction* before it executes.

        The scheduler calls this the moment a batch is formed, so
        admission starts back-pressuring while the work is still in
        flight instead of one batch later; once the batch finishes, only
        the residual (actual minus predicted, floored at zero) goes
        through :meth:`note_busy`.  An over-prediction therefore charges
        slightly too much for one window — it decays with the EWMA —
        while an under-prediction is corrected exactly.
        """
        if core_seconds < 0:
            raise ValueError(f"negative core_seconds {core_seconds}")
        with self._lock:
            self._busy_core_s += core_seconds
            self.predicted_core_s += core_seconds

    def _resample_locked(self) -> None:
        now = self._clock()
        elapsed = now - self._last_sample_s
        if elapsed < self.sample_period_s:
            return
        sample = self._busy_core_s / (elapsed * self.capacity_cores)
        alpha = min(1.0, elapsed / self.window_s)
        self.fraction = alpha * sample + (1.0 - alpha) * self.fraction
        self._busy_core_s = 0.0
        self._last_sample_s = now

    @property
    def over_threshold(self) -> bool:
        with self._lock:
            self._resample_locked()
            return self.fraction > self.threshold

    def admission_delay_s(self) -> float:
        """Gate one admission attempt: 0 lets it through, >0 is the 429 delay.

        Mirrors :meth:`repro.qos.governor.QosGovernor.gate`: under
        threshold the delay resets and the job proceeds; over threshold
        the delay doubles from ``initial_delay_s`` toward ``max_delay_s``.
        """
        with self._lock:
            self._resample_locked()
            if self.fraction <= self.threshold:
                self.delay_s = 0.0
                return 0.0
            if self.delay_s == 0.0:
                self.delay_s = self.initial_delay_s
            else:
                self.delay_s = min(self.delay_s * 2.0, self.max_delay_s)
            self.throttle_events += 1
            return self.delay_s

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            self._resample_locked()
            return {
                "fraction": self.fraction,
                "threshold": self.threshold,
                "over_threshold": float(self.fraction > self.threshold),
                "delay_s": self.delay_s,
                "throttle_events": float(self.throttle_events),
                "predicted_core_s": self.predicted_core_s,
            }


class AdmissionController:
    """A bounded FIFO of admitted job ids with load-aware retry hints."""

    def __init__(
        self,
        queue_limit: int = 16,
        governor: Optional[ServiceGovernor] = None,
        retry_after_floor_s: float = 0.5,
    ):
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.queue_limit = queue_limit
        self.governor = governor
        self.retry_after_floor_s = retry_after_floor_s
        self._lock = threading.Lock()
        self._nonempty = threading.Condition(self._lock)
        self._queue: deque = deque()
        #: EWMA of per-job service time, used to estimate Retry-After.
        self.mean_service_s = 1.0
        self.rejected_queue_full = 0
        self.rejected_backpressure = 0

    def depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def try_admit(self, job_id: str) -> None:
        """Enqueue ``job_id`` or raise :class:`RejectedJob` (never blocks).

        The governor is consulted first — when the host is already
        saturated with simulation work, growing even a non-full queue
        just converts latency into backlog, which is the failure mode
        the paper measures.
        """
        if self.governor is not None:
            delay_s = self.governor.admission_delay_s()
            if delay_s > 0.0:
                self.rejected_backpressure += 1
                raise RejectedJob("qos-backpressure", delay_s)
        with self._nonempty:
            if len(self._queue) >= self.queue_limit:
                self.rejected_queue_full += 1
                retry = max(
                    self.retry_after_floor_s,
                    len(self._queue) * self.mean_service_s,
                )
                raise RejectedJob("queue-full", retry)
            self._queue.append(job_id)
            self._nonempty.notify()

    def take_batch(
        self, max_items: Optional[int] = None, timeout_s: Optional[float] = None
    ) -> List[str]:
        """Pop every queued id (up to ``max_items``), waiting up to
        ``timeout_s`` for the first one; an empty list means timeout."""
        with self._nonempty:
            if not self._queue:
                self._nonempty.wait(timeout=timeout_s)
            batch: List[str] = []
            while self._queue and (max_items is None or len(batch) < max_items):
                batch.append(self._queue.popleft())
            return batch

    def requeue_front(self, job_ids: List[str]) -> None:
        """Put a taken batch back at the head, original order preserved.

        The scheduler uses this when it was paused between blocking on
        :meth:`take_batch` and actually being allowed to run the batch;
        requeueing may transiently exceed ``queue_limit``, which is fine —
        the bound is an admission bound, not a storage invariant.
        """
        with self._nonempty:
            for job_id in reversed(job_ids):
                self._queue.appendleft(job_id)
            self._nonempty.notify()

    def note_service_time(self, seconds: float) -> None:
        """Fold one job's observed service time into the retry estimate."""
        if seconds < 0:
            return
        with self._lock:
            self.mean_service_s = 0.7 * self.mean_service_s + 0.3 * seconds
