"""Service observability: job trace documents, ops snapshot, JSONL log.

This is the serving tier's counterpart of :mod:`repro.core.tracing` —
the paper's end-to-end accounting argument applied to the daemon itself.
A job's wall-clock life (HTTP receive → admission, including every 429
back-off round → queue wait → batch assembly → per-run simulation in
pool workers → result render) is reconstructed from the timestamps the
server and scheduler stamp onto the :class:`~repro.service.jobs.Job`,
so the trace has **no gaps at stage boundaries by construction**: each
stage span ends on the exact timestamp the next one starts.

Three deliverables live here:

* :func:`build_trace_document` / :func:`build_stitched_trace` — the span
  JSON served by ``GET /v1/jobs/<id>/trace`` and its Chrome-trace
  (``?format=chrome``) form, with worker-side in-sim spans merged in
  under the job's trace id.
* :func:`ops_document` — the ``GET /v1/ops`` snapshot ``hiss-top``
  renders: queue, governor, workers, cache hit rates, tail latencies,
  tracer saturation, recent jobs.
* :class:`OpsLog` — structured JSONL operational logging (one event per
  job/batch transition, keyed by trace/job ids; ``hiss-serve
  --log-json``), thread-safe and line-buffered so ``tail -f | jq`` works.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, IO, List, Optional

from ..telemetry.spans import (
    SPAN_SCHEMA,
    STATUS_OK,
    STATUS_REJECTED,
    stitched_chrome_trace,
)
from .jobs import DONE, FAILED, Job, TERMINAL_STATES

__all__ = [
    "OpsLog",
    "build_stitched_trace",
    "build_trace_document",
    "ops_document",
]


# ----------------------------------------------------------------------
# Structured JSONL operational logging
# ----------------------------------------------------------------------
class OpsLog:
    """One JSON object per line, one line per service transition.

    Disabled (``stream=None``) it costs a single attribute check per
    site — the same zero-overhead contract as the in-sim tracer.  Every
    record carries ``ts`` (epoch seconds) and ``event``; job events add
    ``trace`` and ``job`` so a trace id greps the whole lifecycle:

    ``{"ts": ..., "event": "job.admitted", "trace": "ab12...", "job":
    "job-000001-...", "queue_depth": 3}``

    Path-backed logs can opt into size-based rotation (``max_bytes`` +
    keep-``backups``): when the live file crosses the limit it is renamed
    to ``<path>.1`` (older generations shifting to ``.2``, ``.3``, ...)
    and a fresh file is opened.  The check-and-rename happens under the
    same lock as every write, after a complete line + flush, so neither
    the live file nor any backup ever holds a torn JSON line.

    ``tee`` (when set) receives every record as a dict, *before* the
    write and regardless of whether a stream is attached — it is how the
    flight recorder (:mod:`repro.flight`) observes the event stream even
    on daemons that log nowhere.  The tee is called outside the write
    lock (it must be thread-safe on its own) so a slow consumer can
    never hold up rotation, and a rotation can never tear what the tee
    saw: the tee gets whole records, the file gets whole lines.
    """

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        path: Optional[str] = None,
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if backups < 1:
            raise ValueError(f"backups must be >= 1, got {backups}")
        self.stream = stream
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        #: Observer called with every record dict (None = no observer).
        self.tee = None
        self._lock = threading.Lock()
        self.lines = 0
        self.rotations = 0

    @property
    def enabled(self) -> bool:
        return self.stream is not None

    @classmethod
    def open_path(
        cls,
        path: Optional[str],
        max_bytes: Optional[int] = None,
        backups: int = 3,
    ) -> "OpsLog":
        """An OpsLog writing to ``path`` (``-`` = stderr, None = disabled).

        ``max_bytes`` (path-backed logs only) turns on size-based
        rotation, keeping ``backups`` shifted ``.1``/``.2``/... files.
        """
        if path is None:
            return cls(None)
        if path == "-":
            return cls(sys.stderr)
        return cls(
            open(path, "a", encoding="utf-8"),
            path=path, max_bytes=max_bytes, backups=backups,
        )

    def log(self, event: str, **fields: Any) -> None:
        tee = self.tee
        if self.stream is None and tee is None:
            return
        record: Dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        if tee is not None:
            tee(record)
        if self.stream is None:
            return
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self.stream.write(line + "\n")
            self.stream.flush()
            self.lines += 1
            if (
                self.max_bytes is not None
                and self.path is not None
                and self.stream.tell() >= self.max_bytes
            ):
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        """Shift ``path`` -> ``.1`` -> ``.2`` -> ... and reopen (lock held)."""
        self.stream.close()
        for index in range(self.backups - 1, 0, -1):
            older = f"{self.path}.{index}"
            if os.path.exists(older):
                os.replace(older, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self.stream = open(self.path, "a", encoding="utf-8")
        self.rotations += 1

    def close(self) -> None:
        if self.stream is not None and self.stream not in (sys.stderr, sys.stdout):
            self.stream.close()
        self.stream = None


# ----------------------------------------------------------------------
# Job trace documents
# ----------------------------------------------------------------------
def _span(
    trace_id: str,
    span_id: str,
    name: str,
    category: str,
    start_s: Optional[float],
    end_s: Optional[float],
    parent_id: Optional[str] = None,
    status: str = STATUS_OK,
    args: Optional[Dict[str, Any]] = None,
) -> Optional[Dict[str, Any]]:
    """One span dict, or None when its boundary timestamps are missing."""
    if start_s is None or end_s is None or end_s < start_s:
        return None
    doc: Dict[str, Any] = {
        "name": name,
        "category": category,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "start_s": start_s,
        "end_s": end_s,
        "duration_s": end_s - start_s,
        "status": status,
    }
    if args:
        doc["args"] = args
    return doc


def build_trace_document(job: Job) -> Dict[str, Any]:
    """The span-JSON document for one job (``GET /v1/jobs/<id>/trace``).

    Stage spans chain on shared timestamps (no boundary gaps); each
    back-off round the client sat out before admission appears as its own
    ``admission.backoff`` span; each run a pool worker simulated on this
    job's behalf appears as a ``sim.run`` span carrying the parent trace
    id, with the worker's in-sim event stream attached under ``sim``.
    """
    trace = job.trace_id
    spans: List[Dict[str, Any]] = []
    root_start = job.received_s or job.created_s
    if job.backoff_rounds:
        root_start = min(
            root_start, min(r["received_s"] for r in job.backoff_rounds)
        )
    root_end = job.finished_s
    root = _span(
        trace, "root", "job", "job", root_start,
        root_end if root_end is not None else root_start,
        status="error" if job.state == FAILED else STATUS_OK,
        args={
            "job_id": job.id,
            "state": job.state,
            "experiments": list(job.spec.experiments),
            "planned_runs": len(job.run_keys),
            "runs_cached": job.runs_cached,
            "runs_executed": job.runs_executed,
            "submissions": job.submissions,
        },
    )
    if root:
        if job.finished_s is None:
            root["end_s"] = None  # still in flight: open root span
            root["duration_s"] = 0.0
        spans.append(root)

    for index, round_doc in enumerate(job.backoff_rounds):
        span = _span(
            trace, f"backoff-{index}", "admission.backoff", "submit",
            round_doc.get("received_s"), round_doc.get("rejected_s"),
            parent_id="root", status=STATUS_REJECTED,
            args={
                "round": index + 1,
                "reason": round_doc.get("reason"),
                "retry_after_s": round_doc.get("retry_after_s"),
            },
        )
        if span:
            spans.append(span)

    admitted_s = job.created_s or None
    submit = _span(
        trace, "submit", "submit", "submit", job.received_s, admitted_s,
        parent_id="root",
        args={"plan_s": job.plan_elapsed_s, "backoff_rounds": len(job.backoff_rounds)},
    )
    if submit:
        spans.append(submit)
    queue = _span(
        trace, "queue", "queue.wait", "queue", admitted_s, job.started_s,
        parent_id="root",
    )
    if queue:
        spans.append(queue)
    batch_end = job.render_start_s if job.render_start_s is not None else job.exec_done_s
    batch = _span(
        trace, "batch", "batch.execute", "batch", job.started_s, batch_end,
        parent_id="root",
        args={
            "runs_cached": job.runs_cached,
            "runs_executed": job.runs_executed,
            "batch_jobs": job.batch_size,
        },
    )
    if batch:
        spans.append(batch)
    render = _span(
        trace, "render", "render", "render", batch_end, job.finished_s,
        parent_id="root",
        status="error" if job.state == FAILED else STATUS_OK,
    )
    if render:
        spans.append(render)

    sim_section: List[Dict[str, Any]] = []
    for run_index, run in enumerate(job.sim_runs):
        span = _span(
            trace, f"sim-{run_index}", f"sim.run {run['run']}", "sim",
            run.get("wall_start_s"), run.get("wall_end_s"),
            parent_id="batch",
            args={
                "run": run.get("run"),
                "worker_pid": run.get("worker_pid"),
                "events": len(run.get("events") or []),
                "events_dropped": run.get("events_dropped", 0),
                "shared_with_traces": [
                    t for t in run.get("trace_ids", []) if t != trace
                ],
            },
        )
        if span:
            spans.append(span)
        sim_section.append(
            {
                "run": run.get("run"),
                "trace_id": trace,
                "parent_span_id": f"sim-{run_index}",
                "wall_start_s": run.get("wall_start_s"),
                "wall_end_s": run.get("wall_end_s"),
                "worker_pid": run.get("worker_pid"),
                "events_dropped": run.get("events_dropped", 0),
                "events": run.get("events") or [],
            }
        )

    spans.sort(key=lambda s: (s["start_s"], s["span_id"]))
    return {
        "schema": SPAN_SCHEMA,
        "trace_id": trace,
        "job_id": job.id,
        "state": job.state,
        "spans": spans,
        "sim": sim_section,
        "dropped_spans": 0,
    }


def build_stitched_trace(job: Job) -> Dict[str, Any]:
    """Chrome-trace form of :func:`build_trace_document` (one timeline)."""
    return stitched_chrome_trace(build_trace_document(job), label=f"hiss {job.id}")


def sim_event_dict(event) -> Dict[str, Any]:
    """Serialize one in-sim :class:`~repro.telemetry.TraceEvent` for a job
    trace document (plain JSON, ns timestamps preserved)."""
    doc: Dict[str, Any] = {
        "ph": event.phase,
        "name": event.name,
        "cat": event.category,
        "track": event.track,
        "ts_ns": event.ts_ns,
    }
    if event.dur_ns:
        doc["dur_ns"] = event.dur_ns
    if event.args:
        doc["args"] = dict(event.args)
    return doc


# ----------------------------------------------------------------------
# The /v1/ops snapshot
# ----------------------------------------------------------------------
#: Histogram names the ops snapshot surfaces as tail latencies.
LATENCY_HISTOGRAMS = (
    ("queue_wait_s", "service.job.queue_wait_s"),
    ("sim_s", "service.job.sim_s"),
    ("e2e_s", "service.job.e2e_s"),
)


def ops_document(service, recent: int = 10) -> Dict[str, Any]:
    """Point-in-time operational snapshot of a ``HissService``.

    Everything ``hiss-top`` shows in one GET: designed to be cheap (no
    simulation state is touched, only locks on the store/admission/
    governor) so polling it every second is harmless.
    """
    from ..core import experiment as _experiment
    from ..core.planner import resolve_jobs
    from ..core.pool import shared_pool_stats

    now_s = time.time()
    governor = service.governor.snapshot()
    histograms = service.metrics.histograms
    latency: Dict[str, Any] = {}
    for label, name in LATENCY_HISTOGRAMS:
        histogram = histograms.get(name)
        latency[label] = histogram.summary() if histogram is not None else None

    disk = _experiment.get_disk_cache()
    disk_doc = None
    if disk is not None:
        hits, misses, stores = disk.stats()
        lookups = hits + misses
        disk_doc = {
            "hits": hits,
            "misses": misses,
            "stores": stores,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }
    counters = service.metrics.counters
    executed = counters.get("service.runs.executed")
    cache_hits = counters.get("service.runs.cache_hits")
    runs_failed = counters.get("service.runs.failed")
    executed_n = executed.value if executed else 0
    cache_hits_n = cache_hits.value if cache_hits else 0
    runs_seen = executed_n + cache_hits_n
    # Failed runs ride the pool section: the crash trigger's console
    # cross-check lives next to the crashed-worker counter it confirms.
    pool_doc = dict(shared_pool_stats())
    pool_doc["runs_failed"] = runs_failed.value if runs_failed else 0

    jobs = service.store.jobs()
    recent_jobs = sorted(jobs, key=lambda j: j.created_s, reverse=True)[:recent]

    engine = getattr(service, "slo_engine", None)
    if engine is not None:
        alerts = engine.alerts_document()
        slo_doc: Dict[str, Any] = {
            "enabled": True,
            "specs": len(engine.specs),
            "ticks": alerts.get("ticks", 0),
            "firing": alerts.get("firing", []),
            "history": alerts.get("history", [])[-5:],
        }
    else:
        slo_doc = {"enabled": False}

    flight = getattr(service, "flight", None)
    postmortems_doc = (
        flight.document() if flight is not None else {"enabled": False}
    )

    return {
        "now_s": now_s,
        "uptime_s": now_s - service._started_s,
        "draining": service._draining,
        "queue": {
            "depth": service.admission.depth(),
            "limit": service.admission.queue_limit,
            "mean_service_s": service.admission.mean_service_s,
            "rejected_queue_full": service.admission.rejected_queue_full,
            "rejected_backpressure": service.admission.rejected_backpressure,
        },
        "governor": governor,
        "workers": {
            "configured_jobs": service.scheduler.jobs,
            "resolved_workers": resolve_jobs(service.scheduler.jobs),
            "utilization": governor.get("fraction", 0.0),
        },
        "pool": pool_doc,
        "cache": {
            "memory_runs": len(_experiment._CACHE),
            "run_hit_rate": (cache_hits_n / runs_seen) if runs_seen else 0.0,
            "runs_executed": executed_n,
            "runs_cache_hits": cache_hits_n,
            "disk": disk_doc,
        },
        "trace": {
            "enabled": service.trace_enabled,
            "dropped_events": service.scheduler.trace_dropped,
        },
        "latency": latency,
        "slo": slo_doc,
        "postmortems": postmortems_doc,
        "jobs": {
            "counts": service.store.counts(),
            "recent": [
                {
                    "id": job.id,
                    "trace_id": job.trace_id,
                    "state": job.state,
                    "experiments": list(job.spec.experiments),
                    "planned_runs": len(job.run_keys),
                    "runs_cached": job.runs_cached,
                    "runs_executed": job.runs_executed,
                    "submissions": job.submissions,
                    "e2e_s": (
                        (job.finished_s - job.created_s)
                        if job.finished_s is not None and job.created_s
                        else None
                    ),
                    "age_s": (now_s - job.created_s) if job.created_s else None,
                    "done": job.state in TERMINAL_STATES,
                    "ok": job.state == DONE,
                }
                for job in recent_jobs
            ],
        },
    }
