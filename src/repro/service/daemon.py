"""``hiss-serve``: run the simulation service as a foreground daemon.

Usage::

    hiss-serve --port 8171 --jobs 0 --cache-dir run-cache
    hiss-serve --qos-threshold 0.5 --queue-limit 32 --verbose
    hiss-serve --log-json ops.jsonl        # structured JSONL ops events
    hiss-serve --slo default --postmortem-dir pm   # auto-capture bundles

The process serves until SIGINT/SIGTERM, then drains: submissions get
503, queued and in-flight jobs finish (their results stay fetchable for
the drain's duration), and only then does the listener close.  With
``--cache-dir`` every simulated run also lands in the persistent
content-addressed cache, so a restarted daemon serves repeat jobs warm.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from typing import List, Optional

from ..version import add_version_flag
from .obs import OpsLog
from .server import HissService

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hiss-serve",
        description="Serve HISS simulation jobs over an HTTP JSON API.",
    )
    add_version_flag(parser)
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8171, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="simulate runs on N worker processes (0 = one per CPU core)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=16,
        help="bounded job queue depth; overflow is rejected with 429",
    )
    parser.add_argument(
        "--ttl", type=float, default=900.0, metavar="SECONDS",
        help="evict finished jobs this long after completion",
    )
    parser.add_argument(
        "--qos-threshold", type=float, default=0.75,
        help="fraction of host capacity simulation may consume before "
        "admissions back off exponentially (>= 1 disables)",
    )
    parser.add_argument(
        "--qos-window", type=float, default=2.0, metavar="SECONDS",
        help="averaging window for the load fraction",
    )
    parser.add_argument(
        "--qos-initial-delay", type=float, default=0.5, metavar="SECONDS",
        help="first Retry-After once over threshold (doubles per refusal)",
    )
    parser.add_argument(
        "--qos-max-delay", type=float, default=30.0, metavar="SECONDS",
        help="Retry-After ceiling",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent run cache shared with hiss-experiments --cache-dir",
    )
    parser.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="append structured JSONL ops events to PATH ('-' = stderr)",
    )
    parser.add_argument(
        "--log-json-max-bytes", type=int, default=None, metavar="N",
        help="rotate the --log-json file when it reaches N bytes "
        "(path-backed logs only; off by default)",
    )
    parser.add_argument(
        "--log-json-backups", type=int, default=3, metavar="N",
        help="rotated generations to keep as PATH.1..PATH.N (default 3)",
    )
    parser.add_argument(
        "--slo", default=None, metavar="FILE",
        help="enable burn-rate SLO alerting: an SLO spec JSON (hiss.slo/1), "
        "or 'default' for the built-in objectives "
        "(see 'hiss-slo default-spec' and docs/observability.md)",
    )
    parser.add_argument(
        "--slo-interval", type=float, default=5.0, metavar="SECONDS",
        help="SLO engine sampling cadence (default 5s)",
    )
    parser.add_argument(
        "--postmortem-dir", default=None, metavar="DIR",
        help="enable the flight recorder: auto-capture postmortem bundles "
        "into DIR on SLO alerts, worker crashes, and invariant violations "
        "(see docs/observability.md)",
    )
    parser.add_argument(
        "--postmortem-keep", type=int, default=20, metavar="N",
        help="retain at most N bundles in --postmortem-dir, evicting the "
        "oldest (default 20)",
    )
    parser.add_argument(
        "--postmortem-e2e-threshold", type=float, default=None,
        metavar="SECONDS",
        help="also capture a postmortem when a job's end-to-end latency "
        "exceeds SECONDS (off by default)",
    )
    parser.add_argument(
        "--no-trace", action="store_true",
        help="skip capturing in-sim event streams into job traces "
        "(lifecycle spans and /v1/jobs/<id>/trace still work)",
    )
    parser.add_argument(
        "--cold-pool", action="store_true",
        help="spawn a fresh worker pool per batch instead of keeping "
        "warm resident workers (A/B lever; see docs/performance.md)",
    )
    parser.add_argument(
        "--pool-recycle", type=int, default=None, metavar="N",
        help="retire each warm worker after N tasks (default 256; "
        "0 = never recycle)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )
    return parser


def _load_slos(arg: Optional[str]):
    """``--slo`` value -> spec list (None stays None = engine disabled)."""
    if arg is None:
        return None
    from ..obsd import DEFAULT_SLOS, parse_slo_document

    if arg == "default":
        return list(DEFAULT_SLOS)
    import json

    try:
        with open(arg) as handle:
            doc = json.load(handle)
        return parse_slo_document(doc)
    except (OSError, ValueError) as error:
        raise SystemExit(f"hiss-serve: --slo {arg}: {error}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    slos = _load_slos(args.slo)
    ops_log = OpsLog.open_path(
        args.log_json,
        max_bytes=args.log_json_max_bytes,
        backups=args.log_json_backups,
    )
    if args.pool_recycle is not None:
        from ..core.pool import configure_pool

        configure_pool(recycle_after=args.pool_recycle)
    service = HissService(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        queue_limit=args.queue_limit,
        ttl_s=args.ttl,
        qos_threshold=args.qos_threshold,
        qos_window_s=args.qos_window,
        qos_initial_delay_s=args.qos_initial_delay,
        qos_max_delay_s=args.qos_max_delay,
        cache_dir=args.cache_dir,
        verbose=args.verbose,
        trace=not args.no_trace,
        ops_log=ops_log,
        warm_pool=False if args.cold_pool else None,
        slos=slos,
        slo_interval_s=args.slo_interval,
        postmortem_dir=args.postmortem_dir,
        postmortem_keep=args.postmortem_keep,
        postmortem_e2e_threshold_s=args.postmortem_e2e_threshold,
    )
    shutdown = threading.Event()

    def request_shutdown(signum, _frame) -> None:
        print(f"\nhiss-serve: caught signal {signum}, draining...", flush=True)
        shutdown.set()

    signal.signal(signal.SIGINT, request_shutdown)
    signal.signal(signal.SIGTERM, request_shutdown)

    service.start()
    print(
        f"hiss-serve: listening on {service.url} "
        f"(queue limit {args.queue_limit}, qos threshold {args.qos_threshold}, "
        f"cache {'at ' + args.cache_dir if args.cache_dir else 'in-memory only'})",
        flush=True,
    )
    shutdown.wait()
    service.stop(drain=True)
    ops_log.close()
    print("hiss-serve: drained, bye", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
