"""GPU-to-process signals (the ``S_SENDMSG`` path, Section II-C).

Signals skip the IOMMU's PPR machinery: the GPU instruction raises an
interrupt directly, and the host chain delivers the signal to the target
process.  They reuse the same top-half / worker structure with the low
Table I service cost.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from ..iommu.request import SSR_CATALOG, LatencyStats
from ..oskernel.irq import Irq
from ..oskernel.workqueue import WorkItem
from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..oskernel.kernel import Kernel


class SignalPath:
    """Delivers GPU signal SSRs through the host interrupt chain."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.env = kernel.env
        self.kind = SSR_CATALOG["signal"]
        self.latency = LatencyStats()
        self.signals_delivered = 0

    def send(self) -> Event:
        """Raise a signal SSR; the returned event fires on delivery."""
        done = self.env.event()
        issued_at = self.env.now
        os_path = self.kernel.config.os_path

        def top_half_action(core) -> None:
            item = WorkItem(
                name="gpu-signal",
                ssr_kind="signal",
                service_ns=self.kind.service_ns + os_path.response_ns,
                on_done=lambda kernel: self._complete(done, issued_at),
                is_ssr=True,
                footprint=os_path.worker_footprint,
            )
            self.kernel.workqueues.queue_work(core.id, item)

        irq = Irq(
            name="gpu-signal",
            handler_ns=os_path.top_half_ns,
            action=top_half_action,
            is_ssr=True,
            footprint=os_path.top_half_footprint,
        )
        self.kernel.irq_controller.raise_msi(irq)
        return done

    def _complete(self, done: Event, issued_at: int) -> None:
        self.latency.record(self.env.now - issued_at)
        self.signals_delivered += 1
        self.kernel.ssr_accounting.note_completion()
        done.succeed()
