"""GPU device models: workload execution, fault issue, signals.

The GPU computes independently and requests OS services (page faults,
signals) that only host CPUs can execute — the root of the paper's
interference story.
"""

from .gpu import GpuDevice, HostRuntimeThread
from .signals import SignalPath
from .trace import TraceDrivenGpu, TraceEvent, format_trace, parse_trace

__all__ = [
    "GpuDevice",
    "HostRuntimeThread",
    "SignalPath",
    "TraceDrivenGpu",
    "TraceEvent",
    "format_trace",
    "parse_trace",
]
