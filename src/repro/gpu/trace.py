"""Trace-driven GPU workloads: replay recorded or hand-written SSR streams.

The statistical profiles in :mod:`repro.workloads.gpuapps` cover the
paper's applications, but researchers often have *fault traces* from real
drivers (timestamped page-fault logs).  :class:`TraceDrivenGpu` replays
such a trace against the simulated host, honouring the same hardware
backpressure limits as the profile-driven device — so any question the
reproduction answers for synthetic workloads can be asked of a recorded
one.

A trace is a sequence of :class:`TraceEvent` entries; helpers convert
to/from a simple text format (``time_ns count [kind]`` per line).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable, List, Sequence, TYPE_CHECKING

from ..iommu.iommu import Iommu
from ..iommu.request import SSR_CATALOG, SsrRequest
from ..sim import Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..oskernel.kernel import Kernel


@dataclass(frozen=True)
class TraceEvent:
    """``count`` SSRs of ``kind`` issued at absolute time ``time_ns``."""

    time_ns: int
    count: int = 1
    kind: str = "page_fault"

    def __post_init__(self):
        if self.time_ns < 0:
            raise ValueError(f"negative timestamp {self.time_ns}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.kind not in SSR_CATALOG:
            raise ValueError(f"unknown SSR kind {self.kind!r}")


def parse_trace(text: str) -> List[TraceEvent]:
    """Parse the ``time_ns count [kind]`` line format ('#' comments)."""
    events = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise ValueError(f"line {line_number}: expected 'time count [kind]'")
        kind = parts[2] if len(parts) == 3 else "page_fault"
        events.append(TraceEvent(int(parts[0]), int(parts[1]), kind))
    events.sort(key=lambda e: e.time_ns)
    return events


def format_trace(events: Iterable[TraceEvent]) -> str:
    """Render events back to the text format."""
    return "\n".join(f"{e.time_ns} {e.count} {e.kind}" for e in events)


class TraceDrivenGpu:
    """A GPU device that replays a fixed SSR trace.

    Issue timing honours the trace, except when hardware backpressure
    (the outstanding-SSR limit or a full PPR queue) forces a stall — the
    replay then slips, exactly as real hardware would.
    """

    def __init__(self, kernel: "Kernel", iommu: Iommu, trace: Sequence[TraceEvent]):
        self.kernel = kernel
        self.env = kernel.env
        self.iommu = iommu
        self.trace = sorted(trace, key=lambda e: e.time_ns)
        self.outstanding = Resource(
            kernel.env, capacity=kernel.config.gpu.max_outstanding_ssrs
        )
        self.faults_issued = 0
        self.faults_completed = 0
        #: Accumulated issue-time slip caused by backpressure.
        self.slip_ns = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("trace replay already started")
        self._started = True
        self.env.process(self._run())

    def _run(self) -> Generator:
        for event in self.trace:
            if self.env.now < event.time_ns:
                yield self.env.timeout(event.time_ns - self.env.now)
            else:
                self.slip_ns += self.env.now - event.time_ns
            kind = SSR_CATALOG[event.kind]
            for _ in range(event.count):
                yield self.outstanding.request()
                request = SsrRequest(
                    request_id=self.iommu.allocate_request_id(),
                    kind=kind,
                    issued_at=self.env.now,
                    completion=self.env.event(),
                )
                yield self.iommu.submit(request)
                self.faults_issued += 1
                request.completion.callbacks.append(self._on_complete)

    def _on_complete(self, _event) -> None:
        self.faults_completed += 1
        self.outstanding.release()
