"""The GPU device: executes a workload profile and issues SSRs.

The GPU runs semi-independently of the CPUs: it computes in chunks and
issues page faults according to its workload's pattern.  Two hardware
limits throttle it (and make the paper's backpressure QoS possible):

* a bound on outstanding SSRs (fault state the GPU must hold), and
* the IOMMU's bounded PPR queue.

Blocking workloads additionally stall until each chunk's faults complete
(faults on the kernel's critical path); overlapped workloads — like the
paper's microbenchmark — keep computing while faults are in flight.
"""

from __future__ import annotations

from typing import Generator, Optional, TYPE_CHECKING

from ..oskernel.thread import KIND_USER, PRIO_NORMAL, Thread
from ..iommu.iommu import Iommu
from ..iommu.request import SSR_CATALOG, SsrRequest
from ..sim import Resource

if TYPE_CHECKING:  # pragma: no cover
    from ..oskernel.kernel import Kernel
    from ..workloads.profiles import GpuAppProfile


class HostRuntimeThread(Thread):
    """The GPU app's user-space host thread (HSA runtime polling/submission).

    It periodically wakes to poll completion queues; this background
    activity is part of why even a no-SSR GPU run keeps a core lightly
    awake (the paper's ~86% no-SSR CC6 baseline, Fig. 4)."""

    def __init__(self, kernel: "Kernel", profile: "GpuAppProfile"):
        super().__init__(
            kernel,
            name=f"gpu-host/{profile.name}",
            kind=KIND_USER,
            priority=PRIO_NORMAL,
        )
        self.profile = profile

    def body(self) -> Generator:
        profile = self.profile
        while True:
            yield from self.run_for(profile.host_poll_burst_ns)
            if self.core is not None:
                self._release_cpu(requeue=False)
            yield from self.sleep(profile.host_poll_period_ns)


class GpuDevice:
    """An integrated GPU executing one workload profile."""

    def __init__(
        self,
        kernel: "Kernel",
        iommu: Iommu,
        profile: "GpuAppProfile",
        ssr_enabled: bool = True,
    ):
        self.kernel = kernel
        self.env = kernel.env
        self.iommu = iommu
        self.profile = profile
        self.ssr_enabled = ssr_enabled
        self.outstanding = Resource(
            kernel.env, capacity=kernel.config.gpu.max_outstanding_ssrs
        )
        self.host_thread = HostRuntimeThread(kernel, profile)
        self._rng = kernel.rng.stream(f"gpu:{profile.name}")
        #: Telemetry track name for this device's events.
        self._track = f"gpu:{profile.name}"

        #: Completed GPU compute time (the progress metric for real apps).
        self.progress_ns = 0
        #: Time spent stalled on fault issue limits or completions.
        self.stall_ns = 0
        self.faults_issued = 0
        #: Completed faults (the throughput metric for the microbenchmark).
        self.faults_completed = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise RuntimeError("GPU already started")
        self._started = True
        self.kernel.spawn(self.host_thread)
        self.env.process(self._run())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _run(self) -> Generator:
        profile = self.profile
        kind = SSR_CATALOG[profile.ssr_kind]
        if self.ssr_enabled and profile.burst_faults:
            for _ in range(profile.burst_faults):
                yield self.env.timeout(profile.burst_spacing_ns)
                yield from self._issue_fault(kind, blocking=False)
        phase_budget = profile.active_ns
        while True:
            if profile.active_ns and phase_budget <= 0:
                yield self.env.timeout(profile.idle_ns)
                phase_budget = profile.active_ns
            yield from self._compute(profile.compute_chunk_ns)
            phase_budget -= profile.compute_chunk_ns
            if not self.ssr_enabled:
                continue
            # Faults arrive as a burst at the next kernel launch boundary
            # (first touches of newly allocated data), paced by the
            # device's fault-issue bandwidth.  This burst-quiet cadence is
            # what lets CPUs sleep *between* launches (Fig. 4) while still
            # being hammered during them.
            fault_count = self._draw_fault_count()
            dependent = min(profile.dependent_faults, fault_count)
            completions = []
            for _ in range(fault_count - dependent):
                yield self.env.timeout(profile.fault_spacing_ns)
                request = yield from self._issue_fault(kind, blocking=False)
                completions.append(request.completion)
            for _ in range(dependent):
                # Pointer-chasing faults: each blocks the next access.
                yield self.env.timeout(profile.fault_spacing_ns)
                yield from self._issue_fault(kind, blocking=True)
            if profile.blocking and completions:
                stall_start = self.env.now
                yield self.env.all_of(completions)
                self.stall_ns += self.env.now - stall_start
                tracer = self.kernel.tracer
                if tracer.enabled and self.env.now > stall_start:
                    tracer.span(
                        "gpu.stall", "gpu", self._track, stall_start, self.env.now,
                        args={"reason": "chunk_faults", "faults": len(completions)},
                    )

    #: Progress-accounting tick: fine enough that a horizon cut mid-chunk
    #: loses a negligible sliver of progress (whole-chunk accounting would
    #: quantize the progress metric by up to one chunk).
    _PROGRESS_TICK_NS = 100_000

    def _compute(self, duration_ns: int) -> Generator:
        remaining = duration_ns
        while remaining > 0:
            tick = min(remaining, self._PROGRESS_TICK_NS)
            yield self.env.timeout(tick)
            self.progress_ns += tick
            remaining -= tick

    def _draw_fault_count(self) -> int:
        mean = self.profile.faults_per_chunk
        whole = int(mean)
        if self._rng.random() < (mean - whole):
            whole += 1
        return whole

    def _issue_fault(self, kind, blocking: bool) -> Generator:
        """Issue one fault, honoring both hardware backpressure limits."""
        stall_start = self.env.now
        yield self.outstanding.request()
        request = SsrRequest(
            request_id=self.iommu.allocate_request_id(),
            kind=kind,
            issued_at=self.env.now,
            completion=self.env.event(),
        )
        yield self.iommu.submit(request)
        self.stall_ns += self.env.now - stall_start
        self.faults_issued += 1
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "gpu.fault.issue", "gpu", self._track, self.env.now,
                args={"id": request.request_id, "blocking": blocking,
                      "backpressure_ns": self.env.now - stall_start},
            )
            tracer.metrics.counter("gpu.faults_issued").inc()
        request.completion.callbacks.append(self._on_fault_complete)
        if blocking:
            wait_start = self.env.now
            yield request.completion
            self.stall_ns += self.env.now - wait_start
            if tracer.enabled and self.env.now > wait_start:
                tracer.span(
                    "gpu.stall", "gpu", self._track, wait_start, self.env.now,
                    args={"reason": "dependent_fault", "id": request.request_id},
                )
        return request

    def _on_fault_complete(self, _event) -> None:
        self.faults_completed += 1
        self.outstanding.release()
