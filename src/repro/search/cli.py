"""``hiss-sweep`` — the autotuner's console entry point.

Subcommands::

    hiss-sweep run      --state sweep.jsonl [--seed N --budget N ...]
    hiss-sweep resume   --state sweep.jsonl
    hiss-sweep report   --state sweep.jsonl [-o frontier.html]
    hiss-sweep validate --state sweep.jsonl

``run`` starts a fresh sweep (refusing to clobber an existing journal);
``resume`` continues one after a crash or a deliberate kill; ``report``
prints the frontier table and optionally writes the single-file HTML
chart; ``validate`` replays the journal and cross-checks it against the
archive file.  ``--interrupt-after N`` (a CI/test hook) aborts the sweep
mid-round after N evaluations with exit code 3, which is what the
``sweep-smoke`` CI job uses to prove resume convergence.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..core import configure_disk_cache
from ..version import add_version_flag
from ..telemetry import MetricsRegistry, SpanRecorder, render_metrics_text, trace_document
from .driver import (
    ARCHIVE_SUFFIX,
    SweepDriver,
    SweepInterrupted,
    SweepSettings,
    load_journal,
    replay_journal,
)
from .objectives import OBJECTIVE_NAMES
from .report import frontier_table, write_html
from .space import default_space

#: Exit code of a sweep stopped by ``--interrupt-after`` (CI hook).
EXIT_INTERRUPTED = 3


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seed", type=int, default=0, help="sweep seed (default 0)"
    )
    parser.add_argument(
        "--budget", type=int, default=48,
        help="total evaluation budget (default 48)",
    )
    parser.add_argument(
        "--round-size", type=int, default=16,
        help="candidates per round (default 16)",
    )
    parser.add_argument(
        "--strategy", choices=("grid", "lattice", "evolve"), default="evolve",
        help="proposal strategy (default evolve: lattice seed, then mutation)",
    )
    parser.add_argument(
        "--max-rounds", type=int, default=None,
        help="stop after this many rounds even if budget remains",
    )
    parser.add_argument(
        "--cpu", default="x264", help="CPU workload name (default x264)"
    )
    parser.add_argument(
        "--gpu", default="ubench", help="GPU workload name (default ubench)"
    )
    parser.add_argument(
        "--horizon-ms", type=float, default=20.0,
        help="simulated horizon per run, milliseconds (default 20)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="parallel simulation workers (default 1; results identical)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="disk run-cache directory (resume + warm re-runs need this)",
    )
    parser.add_argument(
        "--interrupt-after", type=int, default=None, metavar="N",
        help="test hook: abort mid-round after N evaluations (exit 3)",
    )
    parser.add_argument(
        "--spans", metavar="FILE", default=None,
        help="write per-round telemetry spans as JSON to FILE",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the search.* metrics after the sweep",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hiss-sweep",
        description="Adaptive Pareto autotuner over mitigation & QoS knobs.",
    )
    add_version_flag(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("run", "start a fresh sweep (refuses to overwrite a journal)"),
        ("resume", "continue a killed or crashed sweep from its journal"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument(
            "--state", required=True, metavar="FILE",
            help="JSONL sweep journal (archive lands next to it)",
        )
        _add_sweep_flags(command)

    report = sub.add_parser("report", help="print the frontier table")
    report.add_argument("--state", required=True, metavar="FILE")
    report.add_argument(
        "-o", "--html", metavar="FILE", default=None,
        help="also write the self-contained HTML chart to FILE",
    )

    validate = sub.add_parser(
        "validate", help="replay the journal and cross-check the archive"
    )
    validate.add_argument("--state", required=True, metavar="FILE")
    return parser


def _driver_from_args(args: argparse.Namespace) -> SweepDriver:
    settings = SweepSettings(
        seed=args.seed,
        budget=args.budget,
        round_size=args.round_size,
        strategy=args.strategy,
        cpu_name=args.cpu,
        gpu_name=args.gpu,
        horizon_ns=int(args.horizon_ms * 1_000_000),
        max_rounds=args.max_rounds,
        jobs=args.jobs,
    )
    return SweepDriver(
        default_space(),
        settings,
        state_path=args.state,
        registry=MetricsRegistry(),
        recorder=SpanRecorder(),
        interrupt_after=args.interrupt_after,
    )


def _finish(driver: SweepDriver, args: argparse.Namespace) -> None:
    if args.spans:
        with open(args.spans, "w", encoding="utf-8") as handle:
            json.dump(trace_document(driver.recorder), handle, indent=2)
        print(f"spans: {args.spans}")
    if args.metrics:
        sys.stdout.write(render_metrics_text(driver.registry, driver.gauges()))


def _cmd_sweep(args: argparse.Namespace, resume: bool) -> int:
    if args.cache_dir:
        configure_disk_cache(args.cache_dir)
    driver = _driver_from_args(args)
    try:
        result = driver.run(resume=resume)
    except SweepInterrupted as interrupt:
        # Journal + run cache hold everything; `hiss-sweep resume` picks
        # the sweep back up and converges to the uninterrupted archive.
        print(f"sweep interrupted: {interrupt}", file=sys.stderr)
        _finish(driver, args)
        return EXIT_INTERRUPTED
    print(result.summary())
    print(f"state:   {result.state_path}")
    print(f"archive: {result.archive_path}")
    _finish(driver, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    archive_path = args.state + ARCHIVE_SUFFIX
    try:
        with open(archive_path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        print(f"no archive at {archive_path}; run the sweep first",
              file=sys.stderr)
        return 1
    sys.stdout.write(frontier_table(document))
    if args.html:
        space = default_space()
        state = replay_journal(load_journal(args.state), space)
        evaluations = [
            (point, vector) for point, vector in state["archive"].values()
        ]
        write_html(document, args.html, evaluations)
        print(f"html: {args.html}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Replay the journal; cross-check counts, vectors, and the archive."""
    space = default_space()
    problems: List[str] = []
    try:
        records = load_journal(args.state)
    except FileNotFoundError:
        print(f"no journal at {args.state}", file=sys.stderr)
        return 1
    meta = next((r for r in records if r.get("kind") == "meta"), None)
    if meta is None:
        problems.append("no meta record — not a sweep journal")
    else:
        if meta.get("schema") != 1:
            problems.append(f"unsupported schema {meta.get('schema')!r}")
        if meta.get("objectives") != list(OBJECTIVE_NAMES):
            problems.append(
                f"objective set drifted: journal has {meta.get('objectives')}"
            )
        if meta.get("space_digest") != space.digest():
            problems.append(
                "space digest mismatch — the knob domains changed since "
                "this sweep ran"
            )
    for record in records:
        if record.get("kind") != "eval":
            continue
        try:
            space.validate(record["point"])
        except (TypeError, ValueError, KeyError) as error:
            problems.append(f"bad eval point {record.get('point')!r}: {error}")
            continue
        if len(record.get("vector", [])) != len(OBJECTIVE_NAMES):
            problems.append(
                f"eval vector of wrong arity: {record.get('vector')!r}"
            )
    round_indices = [r["round"] for r in records if r.get("kind") == "round"]
    if round_indices != sorted(set(round_indices)):
        problems.append(f"round records not strictly increasing: {round_indices}")
    state = None
    if not problems:
        try:
            state = replay_journal(records, space)
        except (TypeError, ValueError, KeyError) as error:
            problems.append(f"journal replay failed: {error}")
    if state is not None:
        archive_path = args.state + ARCHIVE_SUFFIX
        try:
            with open(archive_path, "r", encoding="utf-8") as handle:
                on_disk = json.load(handle)
            if on_disk.get("evaluations") != len(state["archive"]):
                problems.append(
                    f"archive says {on_disk.get('evaluations')} evaluations; "
                    f"journal replays {len(state['archive'])}"
                )
            archived = {
                json.dumps(e["point"], sort_keys=True, separators=(",", ":"))
                for e in on_disk.get("frontier", [])
            }
            replayed = set(state["archive"])
            if not archived <= replayed:
                problems.append("archive frontier contains unjournaled points")
        except FileNotFoundError:
            print(f"note: no archive at {archive_path} (sweep still running?)")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    print(
        f"valid: {len(state['archive'])} evaluation(s), "
        f"{len(state['rounds'])} completed round(s)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_sweep(args, resume=False)
    if args.command == "resume":
        return _cmd_sweep(args, resume=True)
    if args.command == "report":
        return _cmd_report(args)
    return _cmd_validate(args)


if __name__ == "__main__":
    sys.exit(main())
