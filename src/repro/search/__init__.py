"""Adaptive Pareto autotuner for mitigation & QoS configuration.

The paper's prescriptive results — the Fig. 7/8 Pareto frontiers over
mitigation combinations and the Section VI QoS governor with its
"administrator-chosen" threshold — are the output of a *configuration
search*.  This package makes that search systematic instead of a
hand-picked grid:

* :mod:`repro.search.space` — a typed :class:`SearchSpace` declaring the
  tunable knobs over :class:`~repro.config.SystemConfig` with validation
  and a canonical point encoding;
* :mod:`repro.search.objectives` — extraction of the paper's objective
  vector (CPU performance vs. the no-SSR baseline, GPU progress, mean
  SSR latency, CC6 residency) from :func:`~repro.core.run_workloads`
  metrics;
* :mod:`repro.search.samplers` — deterministic seeded proposal
  strategies (full grid, low-discrepancy lattice, local mutation around
  the current frontier) with zero reliance on global ``random`` state;
* :mod:`repro.search.driver` — the budgeted successive-rounds loop:
  every candidate batch rides :func:`~repro.core.execute_runs` (warm
  worker pool, cost-model LJF dispatch, two-level run cache), the
  archive lives on :func:`~repro.core.pareto_frontier_map`, and every
  evaluated point journals to a resumable JSONL sweep-state file;
* :mod:`repro.search.report` — frontier text table and a self-contained
  single-file HTML chart;
* :mod:`repro.search.cli` — the ``hiss-sweep`` console script
  (``run`` / ``resume`` / ``report`` / ``validate``).

Determinism contract: the same seed + budget yields a bit-for-bit
identical frontier archive; a sweep killed mid-round and resumed
converges to the same archive as an uninterrupted run; and a repeated
identical sweep executes zero simulations (every evaluation is served
from the run cache).
"""

from .driver import (
    SweepDriver,
    SweepInterrupted,
    SweepResult,
    SweepSettings,
    load_journal,
    replay_journal,
)
from .objectives import OBJECTIVES, EvaluationContext, Objective, maximized_vector
from .samplers import (
    GridSampler,
    LatticeSampler,
    MutationSampler,
    SplitMix64,
    derive_seed,
    sampler_for_round,
)
from .space import Knob, SearchSpace, default_space
from .report import frontier_table, render_html, write_html

__all__ = [
    "EvaluationContext",
    "GridSampler",
    "Knob",
    "LatticeSampler",
    "MutationSampler",
    "OBJECTIVES",
    "Objective",
    "SearchSpace",
    "SplitMix64",
    "SweepDriver",
    "SweepInterrupted",
    "SweepResult",
    "SweepSettings",
    "default_space",
    "derive_seed",
    "frontier_table",
    "load_journal",
    "maximized_vector",
    "render_html",
    "replay_journal",
    "sampler_for_round",
    "write_html",
]
