"""Typed search space over :class:`~repro.config.SystemConfig` knobs.

A :class:`SearchSpace` is an ordered collection of :class:`Knob`\\ s, each
declaring a finite, ordered value domain and how a chosen value lands on
a ``SystemConfig``.  A *point* is a plain ``{knob_name: value}`` dict;
:meth:`SearchSpace.encode` renders it canonically (sorted keys, fixed
separators) so a point has exactly one byte representation — the key the
driver's archive, journal, and dedup logic all share.

The default space (:func:`default_space`) covers the paper's prescriptive
knobs: the IOMMU coalescing window (Sec. V-B), the MSI steering core
(Sec. V-A), the monolithic bottom half (Sec. V-C), the GPU's
outstanding-SSR hardware limit (the backpressure substrate of Sec. VI),
and the QoS governor threshold including the adaptive mode.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from ..config import COALESCE_WINDOW_PAPER_NS, SystemConfig

#: A candidate configuration: knob name -> chosen value.
Point = Dict[str, Any]

#: Sentinel value meaning "steering disabled" for the steering knob.
STEER_OFF = -1

#: Sentinel value meaning "QoS disabled" for the qos knob.
QOS_OFF = "off"

#: QoS knob value selecting the adaptive governor mode.
QOS_ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class Knob:
    """One tunable dimension: a name, a finite ordered domain, an applier.

    ``values`` must be JSON-scalar (int/float/bool/str), unique, and in a
    meaningful order — the mutation sampler treats adjacent values as
    neighbors.  ``apply`` folds a chosen value onto a ``SystemConfig``.
    """

    name: str
    values: Tuple[Any, ...]
    apply: Callable[[SystemConfig, Any], SystemConfig]
    description: str = ""

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"knob {self.name!r} has an empty domain")
        if len(set(self.values)) != len(self.values):
            raise ValueError(f"knob {self.name!r} has duplicate values")
        for value in self.values:
            if not isinstance(value, (int, float, bool, str)):
                raise TypeError(
                    f"knob {self.name!r}: value {value!r} is not a JSON scalar"
                )

    def index_of(self, value: Any) -> int:
        """Position of ``value`` in the domain (raises for foreign values)."""
        try:
            return self.values.index(value)
        except ValueError:
            raise ValueError(
                f"knob {self.name!r}: {value!r} not in domain {list(self.values)}"
            ) from None


class SearchSpace:
    """An ordered set of knobs plus point validation/encoding/application."""

    def __init__(self, knobs: Sequence[Knob]):
        if not knobs:
            raise ValueError("a search space needs at least one knob")
        names = [knob.name for knob in knobs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate knob names: {names}")
        self.knobs: Tuple[Knob, ...] = tuple(knobs)
        self._by_name = {knob.name: knob for knob in self.knobs}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.knobs)

    @property
    def names(self) -> List[str]:
        return [knob.name for knob in self.knobs]

    def knob(self, name: str) -> Knob:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"unknown knob {name!r}; known: {self.names}"
            ) from None

    @property
    def size(self) -> int:
        """Cardinality of the full cartesian grid."""
        total = 1
        for knob in self.knobs:
            total *= len(knob.values)
        return total

    def digest(self) -> str:
        """SHA-256 over knob names and domains (not the applier code).

        Folded into the sweep journal's metadata so a resumed sweep can
        refuse to continue against a reshaped space.
        """
        doc = [[knob.name, list(knob.values)] for knob in self.knobs]
        rendered = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(rendered.encode("utf-8"))
        digest.update(SystemConfig.schema_digest().encode("utf-8"))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Points
    # ------------------------------------------------------------------
    def validate(self, point: Point) -> Point:
        """Check ``point`` names every knob exactly once with a legal value.

        Returns the validated point (a fresh dict in knob order).
        """
        if not isinstance(point, dict):
            raise TypeError(f"a point must be a dict, got {type(point).__name__}")
        unknown = sorted(set(point) - set(self._by_name))
        if unknown:
            raise ValueError(f"unknown knob(s) {unknown}; known: {self.names}")
        missing = [name for name in self.names if name not in point]
        if missing:
            raise ValueError(f"point is missing knob(s) {missing}")
        validated: Point = {}
        for knob in self.knobs:
            knob.index_of(point[knob.name])  # raises on foreign values
            validated[knob.name] = point[knob.name]
        return validated

    def encode(self, point: Point) -> str:
        """The canonical byte representation of a validated point."""
        validated = self.validate(point)
        return json.dumps(validated, sort_keys=True, separators=(",", ":"))

    def decode(self, encoded: str) -> Point:
        """Invert :meth:`encode` (validates on the way in)."""
        return self.validate(json.loads(encoded))

    def point_from_indices(self, indices: Sequence[int]) -> Point:
        """Build a point from one domain index per knob (sampler helper)."""
        if len(indices) != len(self.knobs):
            raise ValueError(
                f"expected {len(self.knobs)} indices, got {len(indices)}"
            )
        return {
            knob.name: knob.values[index % len(knob.values)]
            for knob, index in zip(self.knobs, indices)
        }

    def grid(self) -> Iterator[Point]:
        """Every point of the cartesian grid, in canonical knob-major order."""
        indices = [0] * len(self.knobs)
        while True:
            yield self.point_from_indices(indices)
            position = len(indices) - 1
            while position >= 0:
                indices[position] += 1
                if indices[position] < len(self.knobs[position].values):
                    break
                indices[position] = 0
                position -= 1
            if position < 0:
                return

    def apply(self, config: SystemConfig, point: Point) -> SystemConfig:
        """Fold a validated point's knobs onto ``config``, in knob order."""
        validated = self.validate(point)
        for knob in self.knobs:
            config = knob.apply(config, validated[knob.name])
        return config

    def point_label(self, point: Point) -> str:
        """A compact human label (``knob=value`` pairs, knob order)."""
        validated = self.validate(point)
        return " ".join(f"{name}={validated[name]}" for name in self.names)


# ----------------------------------------------------------------------
# The default space: the paper's prescriptive knobs
# ----------------------------------------------------------------------
def _apply_coalesce(config: SystemConfig, window_us: Any) -> SystemConfig:
    return config.with_mitigation(coalesce_window_ns=int(window_us) * 1_000)


def _apply_steering(config: SystemConfig, core: Any) -> SystemConfig:
    if core == STEER_OFF:
        return config.with_mitigation(steer_to_single_core=False)
    return config.with_mitigation(
        steer_to_single_core=True, steering_target=int(core)
    )


def _apply_monolithic(config: SystemConfig, enabled: Any) -> SystemConfig:
    return config.with_mitigation(monolithic_bottom_half=bool(enabled))


def _apply_outstanding(config: SystemConfig, limit: Any) -> SystemConfig:
    return replace(config, gpu=replace(config.gpu, max_outstanding_ssrs=int(limit)))


def _apply_qos(config: SystemConfig, mode: Any) -> SystemConfig:
    if mode == QOS_OFF:
        return config.with_qos(enabled=False)
    if mode == QOS_ADAPTIVE:
        return config.with_qos(enabled=True, adaptive=True)
    # "th_5" -> threshold 0.05 (the paper's th_25/th_5/th_1 notation).
    if not (isinstance(mode, str) and mode.startswith("th_")):
        raise ValueError(f"unknown qos mode {mode!r}")
    threshold = int(mode[3:]) / 100.0
    return config.with_qos(
        enabled=True, adaptive=False, ssr_time_threshold=threshold
    )


def default_space(num_cores: int = 4) -> SearchSpace:
    """The paper-aligned mitigation + QoS search space (1200 points).

    ``num_cores`` bounds the steering-core knob (steering to a core the
    machine does not have would be invalid).
    """
    steer_values: Tuple[Any, ...] = (STEER_OFF, *range(num_cores))
    return SearchSpace(
        [
            Knob(
                name="coalesce_us",
                values=(0, 4, 13, 26, 52),
                apply=_apply_coalesce,
                description="IOMMU interrupt-coalescing window (µs); "
                f"paper hardware max is {COALESCE_WINDOW_PAPER_NS // 1_000} µs",
            ),
            Knob(
                name="steer_core",
                values=steer_values,
                apply=_apply_steering,
                description="MSI steering target core (-1 = spread, Sec. V-A)",
            ),
            Knob(
                name="monolithic",
                values=(False, True),
                apply=_apply_monolithic,
                description="fold the bottom half into the top half (Sec. V-C)",
            ),
            Knob(
                name="outstanding",
                values=(8, 16, 32, 64),
                apply=_apply_outstanding,
                description="GPU outstanding-SSR hardware limit (backpressure)",
            ),
            Knob(
                name="qos",
                values=(QOS_OFF, "th_25", "th_10", "th_5", "th_1", QOS_ADAPTIVE),
                apply=_apply_qos,
                description="Sec. VI governor: off, fixed threshold, or adaptive",
            ),
        ]
    )
