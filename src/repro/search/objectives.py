"""Objective extraction: from run metrics to a Pareto objective vector.

The paper evaluates a configuration along four axes (Figs. 7–9, Sec. VI):

* **cpu_perf** (maximize) — CPU application performance under SSRs,
  normalized to the same pair with the GPU generating no SSRs;
* **gpu_perf** (maximize) — GPU progress (SSR completion rate for the
  microbenchmark), normalized to the same GPU app with idle CPUs under
  the *base* configuration;
* **ssr_latency_us** (minimize) — mean SSR service latency seen by the
  accelerator;
* **cc6_residency** (maximize) — deep-sleep residency, the paper's
  energy-efficiency proxy (Fig. 4/9).

An :class:`EvaluationContext` fixes the workload pairing and horizon,
names the run keys one candidate point needs (a single swept pair run;
the two baselines are shared by every point and therefore cached after
the first evaluation), and turns the finished metrics into the raw
objective vector.  :func:`maximized_vector` orients that vector so every
axis is maximize — the form :func:`repro.core.pareto_frontier_map`
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..config import SystemConfig
from ..core import make_run_key, run_workloads
from ..core.metrics import SystemMetrics
from ..core.runcache import RunKey
from .space import Point, SearchSpace

#: Objective directions.
MAXIMIZE = "max"
MINIMIZE = "min"


@dataclass(frozen=True)
class Objective:
    """One axis of the trade-off: a name, a direction, and a unit."""

    name: str
    direction: str
    unit: str = ""
    description: str = ""

    def __post_init__(self):
        if self.direction not in (MAXIMIZE, MINIMIZE):
            raise ValueError(
                f"objective {self.name!r}: direction must be "
                f"'{MAXIMIZE}' or '{MINIMIZE}', got {self.direction!r}"
            )


#: The paper-aligned objective vector, in canonical order.
OBJECTIVES: Tuple[Objective, ...] = (
    Objective(
        name="cpu_perf",
        direction=MAXIMIZE,
        unit="x",
        description="CPU app performance vs. the no-SSR baseline pair",
    ),
    Objective(
        name="gpu_perf",
        direction=MAXIMIZE,
        unit="x",
        description="GPU progress vs. the idle-CPU baseline",
    ),
    Objective(
        name="ssr_latency_us",
        direction=MINIMIZE,
        unit="us",
        description="mean SSR service latency at the accelerator",
    ),
    Objective(
        name="cc6_residency",
        direction=MAXIMIZE,
        unit="frac",
        description="CC6 deep-sleep residency over the run",
    ),
)

OBJECTIVE_NAMES: Tuple[str, ...] = tuple(o.name for o in OBJECTIVES)


def maximized_vector(vector: Tuple[float, ...]) -> Tuple[float, ...]:
    """Orient a raw objective vector so every axis is maximized.

    Minimized axes are negated; the transform is its own inverse, and
    dominance on the result equals the mixed-direction dominance on the
    raw vector.
    """
    if len(vector) != len(OBJECTIVES):
        raise ValueError(
            f"expected {len(OBJECTIVES)} objectives, got {len(vector)}"
        )
    return tuple(
        value if objective.direction == MAXIMIZE else -value
        for objective, value in zip(OBJECTIVES, vector)
    )


@dataclass(frozen=True)
class EvaluationContext:
    """Fixed workload pairing + horizon every candidate is judged under."""

    base_config: SystemConfig
    cpu_name: str = "x264"
    gpu_name: str = "ubench"
    horizon_ns: int = 20_000_000

    # ------------------------------------------------------------------
    # Run keys
    # ------------------------------------------------------------------
    def baseline_keys(self) -> List[RunKey]:
        """The two shared normalization runs (no-SSR pair, idle-CPU GPU)."""
        return [
            make_run_key(
                self.cpu_name, self.gpu_name, False, self.base_config, self.horizon_ns
            ),
            make_run_key(
                None, self.gpu_name, True, self.base_config, self.horizon_ns
            ),
        ]

    def point_config(self, space: SearchSpace, point: Point) -> SystemConfig:
        return space.apply(self.base_config, point)

    def point_key(self, space: SearchSpace, point: Point) -> RunKey:
        """The single swept co-execution run a candidate point needs."""
        return make_run_key(
            self.cpu_name,
            self.gpu_name,
            True,
            self.point_config(space, point),
            self.horizon_ns,
        )

    def keys_for(self, space: SearchSpace, points: List[Point]) -> List[RunKey]:
        """Baselines + one pair run per point, deduplicated, in order."""
        keys = self.baseline_keys()
        seen = set(keys)
        for point in points:
            key = self.point_key(space, point)
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys

    # ------------------------------------------------------------------
    # Vector extraction
    # ------------------------------------------------------------------
    def vector(
        self,
        pair: SystemMetrics,
        baseline: Optional[SystemMetrics] = None,
        idle: Optional[SystemMetrics] = None,
    ) -> Tuple[float, ...]:
        """The raw objective vector of one evaluated pair run.

        ``baseline``/``idle`` default to running (cache-served) the
        shared normalization pairs.
        """
        if baseline is None:
            baseline = run_workloads(
                self.cpu_name, self.gpu_name, False, self.base_config, self.horizon_ns
            )
        if idle is None:
            idle = run_workloads(
                None, self.gpu_name, True, self.base_config, self.horizon_ns
            )
        cpu_perf = pair.cpu_app.instructions / baseline.cpu_app.instructions
        idle_metric = idle.gpu.performance_metric()
        gpu_perf = pair.gpu.performance_metric() / idle_metric if idle_metric else 0.0
        return (
            cpu_perf,
            gpu_perf,
            pair.gpu.mean_ssr_latency_ns / 1e3,
            pair.cc6_residency,
        )

    def evaluate(self, space: SearchSpace, point: Point) -> Tuple[float, ...]:
        """Run (or cache-serve) one point's pair and extract its vector."""
        pair = run_workloads(
            self.cpu_name,
            self.gpu_name,
            True,
            self.point_config(space, point),
            self.horizon_ns,
        )
        return self.vector(pair)
