"""Frontier rendering: a terminal table and a self-contained HTML chart.

Both renderers consume the driver's canonical archive document
(:meth:`~repro.search.driver.SweepDriver.archive_document` or the
``.archive.json`` file it writes).  The HTML report follows the repo's
exporter idiom (see :mod:`repro.profiling.report`): one file, inline CSS
and SVG, zero external assets, and the full machine-readable payload
embedded in a ``<script type="application/json" id="hiss-sweep-data">``
block so downstream tooling can re-extract the frontier from the report
itself.
"""

from __future__ import annotations

import json
from html import escape
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .objectives import OBJECTIVES

#: id of the embedded machine-readable payload in the HTML report.
DATA_ELEMENT_ID = "hiss-sweep-data"


# ----------------------------------------------------------------------
# Text table
# ----------------------------------------------------------------------
def frontier_table(document: Dict[str, Any]) -> str:
    """Render an archive document's frontier as an aligned text table."""
    headers = ["#", "label"] + [
        f"{objective.name}" + (f" ({objective.unit})" if objective.unit else "")
        for objective in OBJECTIVES
    ]
    rows: List[List[str]] = []
    for index, entry in enumerate(document.get("frontier", [])):
        rows.append(
            [str(index), str(entry["label"])]
            + [f"{value:.4g}" for value in entry["vector"]]
        )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows))
        if rows
        else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    lines.append(
        f"{len(rows)} frontier point(s) from "
        f"{document.get('evaluations', 0)} evaluation(s) over "
        f"{document.get('rounds', 0)} round(s)"
    )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------
_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1b1b1b; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta { color: #555; font-size: 0.85rem; }
table { border-collapse: collapse; font-size: 0.85rem; margin-top: 0.75rem; }
th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; text-align: right; }
th { background: #f2f2f2; } td.label { text-align: left;
     font-family: ui-monospace, monospace; font-size: 0.8rem; }
svg { background: #fafafa; border: 1px solid #ddd; margin-top: 0.75rem; }
.dot { fill: #9aa7b5; opacity: 0.55; } .front { fill: #c0392b; }
.frontline { stroke: #c0392b; stroke-width: 1.5; fill: none; opacity: 0.7; }
.axis { stroke: #888; stroke-width: 1; } .tick { font-size: 10px; fill: #555; }
.axlabel { font-size: 11px; fill: #333; }
"""


def _scale(value: float, lo: float, hi: float, out_lo: float, out_hi: float) -> float:
    if hi <= lo:
        return (out_lo + out_hi) / 2.0
    return out_lo + (value - lo) / (hi - lo) * (out_hi - out_lo)


def _scatter_svg(
    frontier: Sequence[Dict[str, Any]],
    evaluations: Sequence[Tuple[Any, Sequence[float]]],
) -> str:
    """An inline SVG scatter of cpu_perf (x) vs gpu_perf (y).

    Grey dots are every evaluated point; red dots joined by a polyline
    are the frontier (sorted by cpu_perf), i.e. the Fig. 7/8 shape.
    """
    width, height, pad = 640, 420, 48
    xs = [vector[0] for _point, vector in evaluations] or [0.0, 1.0]
    ys = [vector[1] for _point, vector in evaluations] or [0.0, 1.0]
    for entry in frontier:
        xs.append(entry["vector"][0])
        ys.append(entry["vector"][1])
    lo_x, hi_x = min(xs), max(xs)
    lo_y, hi_y = min(ys), max(ys)

    def sx(value: float) -> float:
        return _scale(value, lo_x, hi_x, pad, width - pad)

    def sy(value: float) -> float:
        return _scale(value, lo_y, hi_y, height - pad, pad)

    parts = [
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        'xmlns="http://www.w3.org/2000/svg" role="img">',
        f'<line class="axis" x1="{pad}" y1="{height - pad}" '
        f'x2="{width - pad}" y2="{height - pad}"/>',
        f'<line class="axis" x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}"/>',
    ]
    for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
        vx = lo_x + fraction * (hi_x - lo_x)
        vy = lo_y + fraction * (hi_y - lo_y)
        parts.append(
            f'<text class="tick" x="{sx(vx):.1f}" y="{height - pad + 14}" '
            f'text-anchor="middle">{vx:.3g}</text>'
        )
        parts.append(
            f'<text class="tick" x="{pad - 6}" y="{sy(vy):.1f}" '
            f'text-anchor="end" dominant-baseline="middle">{vy:.3g}</text>'
        )
    parts.append(
        f'<text class="axlabel" x="{(width) / 2:.0f}" y="{height - 8}" '
        'text-anchor="middle">cpu_perf (vs. no-SSR baseline)</text>'
    )
    parts.append(
        f'<text class="axlabel" x="14" y="{height / 2:.0f}" text-anchor="middle" '
        f'transform="rotate(-90 14 {height / 2:.0f})">gpu_perf (vs. idle-CPU)</text>'
    )
    for _point, vector in evaluations:
        parts.append(
            f'<circle class="dot" cx="{sx(vector[0]):.1f}" '
            f'cy="{sy(vector[1]):.1f}" r="3"/>'
        )
    front_sorted = sorted(frontier, key=lambda e: (e["vector"][0], e["vector"][1]))
    if len(front_sorted) > 1:
        path = " ".join(
            f"{sx(e['vector'][0]):.1f},{sy(e['vector'][1]):.1f}"
            for e in front_sorted
        )
        parts.append(f'<polyline class="frontline" points="{path}"/>')
    for entry in front_sorted:
        parts.append(
            f'<circle class="front" cx="{sx(entry["vector"][0]):.1f}" '
            f'cy="{sy(entry["vector"][1]):.1f}" r="4.5">'
            f"<title>{escape(str(entry['label']))}</title></circle>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def render_html(
    document: Dict[str, Any],
    evaluations: Optional[Sequence[Tuple[Any, Sequence[float]]]] = None,
) -> str:
    """A single-file HTML report for one sweep's archive document.

    ``evaluations`` — optional ``(point, vector)`` pairs for every
    evaluated point (from the journal), drawn as background dots behind
    the frontier.
    """
    evaluations = list(evaluations or [])
    frontier = document.get("frontier", [])
    header_cells = "".join(
        "<th>" + escape(
            objective.name + (f" ({objective.unit})" if objective.unit else "")
        ) + "</th>"
        for objective in OBJECTIVES
    )
    body_rows = []
    for entry in frontier:
        cells = "".join(f"<td>{value:.4g}</td>" for value in entry["vector"])
        body_rows.append(
            f'<tr><td class="label">{escape(str(entry["label"]))}</td>{cells}</tr>'
        )
    payload = {"document": document,
               "evaluations": [[point, list(vector)] for point, vector in evaluations]}
    embedded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    # "</" would close the script element early; JSON-escape it away.
    embedded = embedded.replace("</", "<\\/")
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>hiss-sweep frontier report</title>
<style>{_CSS}</style>
</head>
<body>
<h1>hiss-sweep frontier report</h1>
<p class="meta">strategy {escape(str(document.get('strategy', '?')))} ·
seed {document.get('seed', '?')} · budget {document.get('budget', '?')} ·
{document.get('evaluations', 0)} evaluation(s) over
{document.get('rounds', 0)} round(s) ·
frontier {len(frontier)} · space {escape(str(document.get('space_digest', ''))[:12])}</p>
<h2>CPU vs. GPU performance trade-off</h2>
{_scatter_svg(frontier, evaluations)}
<h2>Pareto frontier ({len(frontier)} point(s))</h2>
<table>
<thead><tr><th>configuration</th>{header_cells}</tr></thead>
<tbody>
{chr(10).join(body_rows)}
</tbody>
</table>
<script type="application/json" id="{DATA_ELEMENT_ID}">{embedded}</script>
</body>
</html>
"""


def write_html(
    document: Dict[str, Any],
    path: str,
    evaluations: Optional[Sequence[Tuple[Any, Sequence[float]]]] = None,
) -> str:
    """Write :func:`render_html` output to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_html(document, evaluations))
    return path
