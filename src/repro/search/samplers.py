"""Deterministic, seeded candidate-proposal strategies.

Three strategies, all pure functions of their arguments — no wall clock,
no global ``random`` state, no hash-seed dependence — so a sweep resumed
after a crash proposes exactly the candidates the uninterrupted sweep
would have:

* :class:`GridSampler` — the full cartesian grid in canonical knob-major
  order (exhaustive; the Fig. 7/8 eight-combination study is a special
  case of this over a three-knob space);
* :class:`LatticeSampler` — a Halton-style low-discrepancy lattice over
  the per-knob index space: broad coverage at any budget, every prefix
  of the sequence well spread;
* :class:`MutationSampler` — local search: mutate knobs of the current
  frontier points to neighboring domain values, which is how the driver
  sharpens the frontier once broad sampling has located it.

Randomness, where needed, comes from :class:`SplitMix64`, a tiny
self-contained 64-bit PRNG seeded via :func:`derive_seed` (SHA-256 over
the sweep seed, the round index, and the strategy name) — identical on
every platform and Python version.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, List, Sequence, Set

from .space import Point, SearchSpace

_MASK64 = (1 << 64) - 1

#: The first primes, one per knob dimension, for the Halton lattice.
_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


class SplitMix64:
    """SplitMix64: a tiny, fully deterministic 64-bit PRNG (public domain
    algorithm; identical output on every platform)."""

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        """A uniform integer in ``[0, n)`` (rejection-sampled, unbiased)."""
        if n <= 0:
            raise ValueError(f"randrange needs n > 0, got {n}")
        limit = _MASK64 - (_MASK64 + 1) % n
        while True:
            value = self.next_u64()
            if value <= limit:
                return value % n

    def choice(self, values: Sequence[Any]) -> Any:
        return values[self.randrange(len(values))]


def derive_seed(*parts: Any) -> int:
    """A 64-bit seed derived from ``parts`` via SHA-256 (stable anywhere)."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return int.from_bytes(digest.digest()[:8], "big")


def _radical_inverse(index: int, base: int) -> float:
    """The van der Corput radical inverse of ``index`` in ``base``."""
    inverse, denom = 0.0, 1.0
    while index > 0:
        index, digit = divmod(index, base)
        denom *= base
        inverse += digit / denom
    return inverse


class GridSampler:
    """The full cartesian grid, in canonical knob-major order."""

    name = "grid"

    def propose(
        self,
        space: SearchSpace,
        count: int,
        round_index: int,
        frontier: Sequence[Point],
        evaluated: Set[str],
    ) -> List[Point]:
        proposals: List[Point] = []
        for point in space.grid():
            if len(proposals) >= count:
                break
            encoded = space.encode(point)
            if encoded not in evaluated:
                proposals.append(point)
                evaluated = evaluated | {encoded}
        return proposals


class LatticeSampler:
    """Halton-style low-discrepancy coverage of the index space.

    Dimension ``d`` uses the ``d``-th prime's radical-inverse sequence to
    pick a value index, so any prefix of the stream spreads evenly over
    the grid.  The stream position persists across rounds via the number
    of points already drawn (``round_index`` picks up where the previous
    round's scan stopped because already-evaluated encodings are skipped
    deterministically).
    """

    name = "lattice"

    def __init__(self, offset: int = 1):
        # Halton index 0 maps every dimension to 0; starting at 1 avoids
        # a degenerate duplicate of the grid origin as the first draw.
        self.offset = offset

    def propose(
        self,
        space: SearchSpace,
        count: int,
        round_index: int,
        frontier: Sequence[Point],
        evaluated: Set[str],
    ) -> List[Point]:
        if len(space) > len(_PRIMES):
            raise ValueError(
                f"lattice supports up to {len(_PRIMES)} knobs, space has {len(space)}"
            )
        proposals: List[Point] = []
        seen = set(evaluated)
        # Bounded scan: the lattice visits every grid point eventually,
        # but a saturated space must terminate the scan.
        for draw in range(self.offset, self.offset + 4 * space.size + count):
            if len(proposals) >= count:
                break
            indices = [
                int(_radical_inverse(draw, _PRIMES[dim]) * len(knob.values))
                for dim, knob in enumerate(space.knobs)
            ]
            point = space.point_from_indices(indices)
            encoded = space.encode(point)
            if encoded not in seen:
                seen.add(encoded)
                proposals.append(point)
        return proposals


class MutationSampler:
    """Local mutation around the current Pareto frontier.

    Each frontier point (visited in canonical encoding order) spawns
    mutants by nudging one or two knobs: a step to an adjacent domain
    value (exploit the ordering) or, with lower probability, a jump to a
    uniformly chosen value (escape local plateaus).  All randomness comes
    from a :class:`SplitMix64` seeded by ``(sweep seed, round index)``,
    so proposals are a pure function of the archive state.
    """

    name = "mutate"

    def __init__(self, seed: int, mutants_per_parent: int = 4, jump_percent: int = 25):
        self.seed = seed
        self.mutants_per_parent = mutants_per_parent
        self.jump_percent = jump_percent

    def _mutate(self, space: SearchSpace, point: Point, rng: SplitMix64) -> Point:
        mutant = dict(point)
        for _ in range(1 + rng.randrange(2)):  # touch 1 or 2 knobs
            knob = space.knobs[rng.randrange(len(space.knobs))]
            index = knob.index_of(mutant[knob.name])
            if rng.randrange(100) < self.jump_percent or len(knob.values) <= 2:
                index = rng.randrange(len(knob.values))
            else:
                step = 1 if rng.randrange(2) else -1
                index = min(len(knob.values) - 1, max(0, index + step))
            mutant[knob.name] = knob.values[index]
        return mutant

    def propose(
        self,
        space: SearchSpace,
        count: int,
        round_index: int,
        frontier: Sequence[Point],
        evaluated: Set[str],
    ) -> List[Point]:
        rng = SplitMix64(derive_seed(self.seed, round_index, self.name))
        parents = sorted(frontier, key=space.encode) or [
            space.point_from_indices([0] * len(space))
        ]
        proposals: List[Point] = []
        seen = set(evaluated)
        # Round-robin over parents so a small count still draws from the
        # whole frontier; bounded attempts so a saturated neighborhood
        # terminates instead of spinning.
        attempts = 0
        max_attempts = max(1, count) * 16
        while len(proposals) < count and attempts < max_attempts:
            parent = parents[attempts % len(parents)]
            attempts += 1
            mutant = self._mutate(space, parent, rng)
            encoded = space.encode(mutant)
            if encoded not in seen:
                seen.add(encoded)
                proposals.append(mutant)
        return proposals


def sampler_for_round(strategy: str, seed: int, round_index: int):
    """The proposal strategy a given round of ``strategy`` uses.

    * ``grid`` — every round scans on through the cartesian grid;
    * ``lattice`` — every round continues the low-discrepancy stream;
    * ``evolve`` — round 0 seeds broadly with the lattice, later rounds
      mutate around the frontier it found.
    """
    if strategy == "grid":
        return GridSampler()
    if strategy == "lattice":
        return LatticeSampler()
    if strategy == "evolve":
        if round_index == 0:
            return LatticeSampler()
        return MutationSampler(seed)
    raise ValueError(
        f"unknown strategy {strategy!r}; known: grid, lattice, evolve"
    )
