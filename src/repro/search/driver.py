"""Budgeted successive-rounds Pareto search with a resumable journal.

One sweep is a sequence of *rounds*.  Each round:

1. asks the strategy's sampler (:func:`~repro.search.samplers.sampler_for_round`)
   for a batch of not-yet-evaluated candidate points — a pure function of
   (seed, round index, current frontier, evaluated set);
2. pushes the batch's run keys through
   :func:`~repro.core.execute_runs`, so every evaluation rides the warm
   :class:`~repro.core.WorkerPool`, the cost model's longest-first
   dispatch, and both run-cache levels (a repeated or resumed sweep
   re-simulates nothing);
3. extracts each candidate's objective vector
   (:class:`~repro.search.objectives.EvaluationContext`), journals it,
   and folds it into the Pareto archive
   (:func:`~repro.core.pareto_frontier_map`);
4. appends a round-complete record and updates the ``search.*`` metrics.

The journal is an append-only JSONL file.  State reconstruction uses one
rule — *an evaluation counts iff its round has a round-complete record* —
so a sweep killed mid-round resumes by deterministically re-proposing
that round (its simulations are already in the run cache) and converges
to the archive an uninterrupted sweep produces, bit for bit.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..config import SystemConfig
from ..core import pareto_frontier_map
from ..core.experiment import planning_active
from ..core.planner import PrewarmReport, execute_runs
from ..core.pool import run_label
from ..telemetry import MetricsRegistry, SpanRecorder
from .objectives import OBJECTIVE_NAMES, EvaluationContext, maximized_vector
from .samplers import sampler_for_round
from .space import Point, SearchSpace

#: Version of the journal/archive documents this module reads and writes.
JOURNAL_SCHEMA = 1

#: Default file name for the frontier archive next to a journal.
ARCHIVE_SUFFIX = ".archive.json"


class SweepInterrupted(RuntimeError):
    """Raised by the test/CI hook that kills a sweep mid-round."""


@dataclass(frozen=True)
class SweepSettings:
    """Everything that determines a sweep's result (journaled as meta).

    ``jobs`` and the pool/cache backends are deliberately *not* part of
    the identity: they change wall-clock, never results.
    """

    seed: int = 0
    budget: int = 48
    round_size: int = 16
    strategy: str = "evolve"
    cpu_name: str = "x264"
    gpu_name: str = "ubench"
    horizon_ns: int = 20_000_000
    max_rounds: Optional[int] = None
    jobs: int = 1

    def __post_init__(self):
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.round_size <= 0:
            raise ValueError(f"round_size must be positive, got {self.round_size}")

    def meta(self, space: SearchSpace, config: SystemConfig) -> Dict[str, Any]:
        """The identity record a resume validates against."""
        return {
            "kind": "meta",
            "schema": JOURNAL_SCHEMA,
            "seed": self.seed,
            "budget": self.budget,
            "round_size": self.round_size,
            "strategy": self.strategy,
            "cpu": self.cpu_name,
            "gpu": self.gpu_name,
            "horizon_ns": self.horizon_ns,
            "space_digest": space.digest(),
            "config_digest": config.stable_digest(),
            "objectives": list(OBJECTIVE_NAMES),
        }


@dataclass
class SweepResult:
    """What one driver invocation did (the CLI prints this)."""

    rounds: int = 0
    evaluations: int = 0
    restored: int = 0
    simulations: int = 0
    cache_served: int = 0
    frontier_size: int = 0
    state_path: str = ""
    archive_path: str = ""
    stopped: str = "budget"

    def summary(self) -> str:
        return (
            f"sweep complete: rounds {self.rounds}, "
            f"evaluations {self.evaluations} ({self.restored} restored), "
            f"cache-served {self.cache_served}, simulated {self.simulations}, "
            f"frontier {self.frontier_size} [{self.stopped}]"
        )


# ----------------------------------------------------------------------
# Journal IO
# ----------------------------------------------------------------------
def load_journal(path: str) -> List[Dict[str, Any]]:
    """Parse a journal's records (a torn final line from a crash is skipped)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn write from a killed process
            if isinstance(record, dict):
                records.append(record)
    return records


def replay_journal(
    records: List[Dict[str, Any]], space: SearchSpace
) -> Dict[str, Any]:
    """Reconstruct sweep state: *only* evaluations of completed rounds count.

    Returns ``{"meta", "rounds", "archive", "next_round"}`` where
    ``archive`` maps canonical encodings to ``(point, vector)`` and
    ``rounds`` is the list of round-complete records in order.
    """
    meta = next((r for r in records if r.get("kind") == "meta"), None)
    rounds = [r for r in records if r.get("kind") == "round"]
    completed = {r["round"] for r in rounds}
    archive: Dict[str, Tuple[Point, Tuple[float, ...]]] = {}
    for record in records:
        if record.get("kind") != "eval" or record.get("round") not in completed:
            continue
        point = space.validate(record["point"])
        archive[space.encode(point)] = (point, tuple(record["vector"]))
    next_round = max(completed) + 1 if completed else 0
    return {
        "meta": meta,
        "rounds": rounds,
        "archive": archive,
        "next_round": next_round,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
class SweepDriver:
    """Run (or resume) one budgeted Pareto sweep against a journal file."""

    def __init__(
        self,
        space: SearchSpace,
        settings: SweepSettings,
        state_path: str,
        archive_path: Optional[str] = None,
        config: Optional[SystemConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        recorder: Optional[SpanRecorder] = None,
        interrupt_after: Optional[int] = None,
        warm: Optional[bool] = None,
    ):
        self.space = space
        self.settings = settings
        self.state_path = state_path
        self.archive_path = archive_path or state_path + ARCHIVE_SUFFIX
        self.config = config or SystemConfig()
        self.context = EvaluationContext(
            base_config=self.config,
            cpu_name=settings.cpu_name,
            gpu_name=settings.gpu_name,
            horizon_ns=settings.horizon_ns,
        )
        self.registry = registry or MetricsRegistry()
        self.recorder = recorder or SpanRecorder()
        self.interrupt_after = interrupt_after
        self.warm = warm
        #: encoding -> (point, raw objective vector), evaluation order.
        self.archive: Dict[str, Tuple[Point, Tuple[float, ...]]] = {}
        self._rounds_completed = 0
        self._evaluated_this_run = 0
        self.result = SweepResult(
            state_path=state_path, archive_path=self.archive_path
        )

    # ------------------------------------------------------------------
    # Frontier / archive documents
    # ------------------------------------------------------------------
    def frontier(self) -> List[Tuple[str, Point, Tuple[float, ...]]]:
        """Non-dominated ``(encoding, point, raw vector)``, canonical order."""
        oriented = {
            encoding: maximized_vector(vector)
            for encoding, (_point, vector) in self.archive.items()
        }
        return [
            (encoding, self.archive[encoding][0], self.archive[encoding][1])
            for encoding, _vector in pareto_frontier_map(oriented)
        ]

    def archive_document(self) -> Dict[str, Any]:
        """The canonical frontier-archive document (bit-for-bit stable)."""
        frontier = self.frontier()
        return {
            "schema": JOURNAL_SCHEMA,
            "seed": self.settings.seed,
            "budget": self.settings.budget,
            "strategy": self.settings.strategy,
            "space_digest": self.space.digest(),
            "objectives": list(OBJECTIVE_NAMES),
            "evaluations": len(self.archive),
            "rounds": self._rounds_completed,
            "frontier": [
                {
                    "label": self.space.point_label(point),
                    "point": point,
                    "vector": list(vector),
                }
                for _encoding, point, vector in frontier
            ],
        }

    def write_archive(self) -> str:
        """Atomically write the canonical archive rendering; returns path."""
        document = self.archive_document()
        rendered = (
            json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
        )
        temp_path = self.archive_path + ".tmp"
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        os.replace(temp_path, self.archive_path)
        return self.archive_path

    def gauges(self) -> Dict[str, float]:
        """The ``search.*`` gauge set (rendered next to the registry)."""
        return {
            "search.evaluations": float(len(self.archive)),
            "search.cache_served": float(self.result.cache_served),
            "search.simulations": float(self.result.simulations),
            "search.frontier_size": float(len(self.frontier())),
            "search.rounds": float(self._rounds_completed),
        }

    # ------------------------------------------------------------------
    # Journal writes
    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        with open(self.state_path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
            )

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    def _restore(self) -> int:
        """Load completed-round state from the journal; returns next round."""
        records = load_journal(self.state_path)
        state = replay_journal(records, self.space)
        meta = state["meta"]
        if meta is None:
            raise ValueError(
                f"{self.state_path}: no meta record; not a sweep journal"
            )
        expected = self.settings.meta(self.space, self.config)
        drift = {
            key: (meta.get(key), value)
            for key, value in expected.items()
            if meta.get(key) != value
        }
        if drift:
            raise ValueError(
                f"{self.state_path}: journal does not match this sweep: "
                + ", ".join(
                    f"{key} was {old!r}, now {new!r}"
                    for key, (old, new) in sorted(drift.items())
                )
            )
        self.archive = state["archive"]
        self._rounds_completed = len(state["rounds"])
        self.result.restored = len(self.archive)
        return state["next_round"]

    # ------------------------------------------------------------------
    # The search loop
    # ------------------------------------------------------------------
    def _evaluate_round(self, round_index: int) -> Tuple[int, str]:
        """Propose, execute, journal one round; returns (evaluated, stop)."""
        settings = self.settings
        remaining = settings.budget - len(self.archive)
        count = min(settings.round_size, remaining)
        sampler = sampler_for_round(settings.strategy, settings.seed, round_index)
        frontier_points = [point for _e, point, _v in self.frontier()]
        proposals = sampler.propose(
            self.space, count, round_index, frontier_points, set(self.archive)
        )
        if not proposals:
            return 0, "exhausted"

        with self.recorder.span(
            f"round {round_index}",
            "search",
            args={"round": round_index, "proposed": len(proposals),
                  "sampler": sampler.name},
        ):
            keys = self.context.keys_for(self.space, proposals)
            report = PrewarmReport()
            execute_runs(keys, jobs=settings.jobs, report=report, warm=self.warm)
            if report.failed:
                labels = ", ".join(run_label(key) for key, _tb in report.failed)
                raise RuntimeError(
                    f"round {round_index}: {len(report.failed)} run(s) failed: "
                    f"{labels}\n{report.failed[0][1]}"
                )
            self.result.simulations += report.executed
            self.result.cache_served += report.memory_hits + report.disk_hits
            self.registry.counter("search.simulations").inc(report.executed)
            self.registry.counter("search.cache_served").inc(
                report.memory_hits + report.disk_hits
            )
            for point in proposals:
                vector = self.context.evaluate(self.space, point)
                self._append(
                    {
                        "kind": "eval",
                        "round": round_index,
                        "point": point,
                        "vector": list(vector),
                    }
                )
                self.archive[self.space.encode(point)] = (point, vector)
                self.registry.counter("search.evaluations").inc()
                self._evaluated_this_run += 1
                if (
                    self.interrupt_after is not None
                    and self._evaluated_this_run >= self.interrupt_after
                ):
                    raise SweepInterrupted(
                        f"interrupted after {self._evaluated_this_run} "
                        f"evaluation(s), mid round {round_index}"
                    )

        frontier_size = len(self.frontier())
        self._append(
            {
                "kind": "round",
                "round": round_index,
                "sampler": sampler.name,
                "proposed": len(proposals),
                "evaluated": len(proposals),
                "executed": report.executed,
                "cache_served": report.memory_hits + report.disk_hits,
                "frontier_size": frontier_size,
            }
        )
        self._rounds_completed += 1
        self.registry.counter("search.rounds").inc()
        return len(proposals), ""

    def run(self, resume: bool = False) -> SweepResult:
        """Execute the sweep to its budget; returns the result summary.

        ``resume=True`` restores completed-round state from the journal
        and continues (a partially journaled round is re-proposed — its
        simulations are cache hits).  A fresh run refuses to overwrite an
        existing journal; a resume requires one.
        """
        if planning_active():
            raise RuntimeError("a sweep cannot run inside a planning context")
        if resume:
            if not os.path.exists(self.state_path):
                raise FileNotFoundError(
                    f"cannot resume: {self.state_path} does not exist"
                )
            round_index = self._restore()
        else:
            if os.path.exists(self.state_path):
                raise FileExistsError(
                    f"{self.state_path} already exists; use resume "
                    "(or choose a fresh state file)"
                )
            directory = os.path.dirname(os.path.abspath(self.state_path))
            os.makedirs(directory, exist_ok=True)
            self._append(self.settings.meta(self.space, self.config))
            round_index = 0

        stopped = "budget"
        while True:
            if (
                self.settings.max_rounds is not None
                and round_index >= self.settings.max_rounds
            ):
                stopped = "max_rounds"
                break
            if len(self.archive) >= self.settings.budget:
                stopped = "budget"
                break
            evaluated, stop = self._evaluate_round(round_index)
            if stop:
                stopped = stop
                break
            round_index += 1

        self.result.rounds = self._rounds_completed
        self.result.evaluations = len(self.archive)
        self.result.frontier_size = len(self.frontier())
        self.result.stopped = stopped
        self.write_archive()
        return self.result
