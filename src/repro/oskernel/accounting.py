"""Per-core time accounting and event counters.

Every nanosecond of core time lands in exactly one bucket (user, kernel,
hard-IRQ, context/mode switching, awake-idle, C-state transition, CC6).
Conservation of time across buckets is a property test invariant.

SSR servicing time is additionally tallied into a dedicated accumulator
that the QoS governor samples (Section VI of the paper: "all OS routines
involved in servicing SSRs are updated to account for their CPU cycles").
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

#: Time buckets.
USER = "user"
KERNEL = "kernel"  # bottom halves, kworkers, daemons (schedulable kernel work)
IRQ = "irq"  # hard-IRQ context: top halves and IPIs
SWITCH = "switch"  # context switches and user<->kernel mode crossings
IDLE = "idle"  # awake but idle (grace period, between tasks)
TRANSITION = "transition"  # C-state entry/exit latency
CC6 = "cc6"  # deep sleep

ALL_MODES = (USER, KERNEL, IRQ, SWITCH, IDLE, TRANSITION, CC6)


class TimeAccounting:
    """Time bucketed per core and per mode."""

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        self._buckets: List[Counter] = [Counter() for _ in range(num_cores)]

    def _check_core(self, core_id: int) -> None:
        # Out-of-range ids must fail loudly: a negative index would
        # silently charge the *last* core via Python list indexing,
        # corrupting the conservation-of-time invariant undetectably.
        if not 0 <= core_id < self.num_cores:
            raise ValueError(
                f"core_id {core_id} outside [0, {self.num_cores})"
            )

    def add(self, core_id: int, mode: str, ns: int) -> None:
        if ns < 0:
            raise ValueError(f"negative duration {ns}")
        if mode not in ALL_MODES:
            raise ValueError(f"unknown mode {mode!r}")
        self._check_core(core_id)
        self._buckets[core_id][mode] += ns

    def core_total(self, core_id: int) -> int:
        self._check_core(core_id)
        return sum(self._buckets[core_id].values())

    def core_mode(self, core_id: int, mode: str) -> int:
        self._check_core(core_id)
        return self._buckets[core_id][mode]

    def total(self, mode: str) -> int:
        return sum(bucket[mode] for bucket in self._buckets)

    def grand_total(self) -> int:
        return sum(self.core_total(c) for c in range(self.num_cores))

    def residency(self, mode: str, horizon_ns: int) -> float:
        """Fraction of all core-time spent in ``mode`` over ``horizon_ns``."""
        if horizon_ns <= 0:
            return 0.0
        return self.total(mode) / (horizon_ns * self.num_cores)

    def snapshot(self) -> Dict[int, Dict[str, int]]:
        return {c: dict(self._buckets[c]) for c in range(self.num_cores)}


class SsrAccounting:
    """CPU time spent servicing SSRs, with a sampling window for the governor."""

    def __init__(self):
        self.total_ns = 0
        self._window_ns = 0
        #: SSRs fully serviced (response sent back to the device).
        self.completed = 0

    def add(self, ns: int) -> None:
        if ns < 0:
            raise ValueError(f"negative duration {ns}")
        self.total_ns += ns
        self._window_ns += ns

    def note_completion(self, count: int = 1) -> None:
        self.completed += count

    def take_window(self) -> int:
        """Return and reset the time accumulated since the last sample."""
        window, self._window_ns = self._window_ns, 0
        return window


class CounterSet:
    """Named event counters (interrupts, IPIs, wakeups, context switches)."""

    def __init__(self):
        self._counts: Counter = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts[name]

    def per_core(self, prefix: str, num_cores: int) -> List[int]:
        """Read counters named ``{prefix}:{core}`` as a list (à la /proc/interrupts)."""
        return [self._counts[f"{prefix}:{core}"] for core in range(num_cores)]

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)


#: Counter names used across the kernel model.
CTR_IRQ = "irq"  # per-core: "irq:<n>"
CTR_IPI = "ipi"  # per-core: "ipi:<n>"
CTR_SSR_INTERRUPT = "ssr_interrupt"  # interrupts raised for SSRs (coalescing merges)
CTR_SSR_REQUEST = "ssr_request"  # individual SSR requests arriving at the IOMMU
CTR_CONTEXT_SWITCH = "context_switch"
CTR_CORE_WAKEUP = "core_wakeup"  # CC6 exits
