"""Kernel work queues and per-core kworker threads.

Deferred SSR work (step 5 of the paper's Figure 1) runs on kworkers at
*normal* priority — this is why busy CPU applications delay GPU system
services (Section IV-A: up to 18% accelerator slowdown).  Work is queued
to the local core's kworker (Linux ``queue_work`` semantics); when the
local worker is backlogged, work spills to the least-loaded awake core, and
only wakes a sleeping core when everyone awake is saturated.

The QoS governor (Section VI) hooks the kworker loop: before servicing an
SSR item, the worker may be told to delay with exponential back-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Tuple, TYPE_CHECKING

from ..profiling.ledger import CH_ENQUEUE, CH_WORKER
from ..sim import Store
from . import accounting as acct
from .thread import KIND_KWORKER, PRIO_NORMAL, Thread

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: Local backlog beyond which new work spills to another core.
SPILL_BACKLOG_THRESHOLD = 4


@dataclass
class WorkItem:
    """One deferred work unit."""

    name: str
    service_ns: float
    #: Called (with the kernel) right before servicing begins.
    on_start: Optional[Callable[["Kernel"], None]] = None
    #: Called (with the kernel) once servicing completes.
    on_done: Optional[Callable[["Kernel"], None]] = None
    #: SSR items are accounted for QoS and may be throttled by the governor.
    is_ssr: bool = False
    #: (cache accesses, branches) pushed through the servicing core.
    footprint: Optional[Tuple[int, int]] = None
    enqueued_at: int = 0
    #: Attribution label for SSR items (the request kind, e.g.
    #: ``page_fault`` / ``signal``); falls back to ``name`` when unset.
    ssr_kind: Optional[str] = None


class KWorker(Thread):
    """A per-core kernel worker servicing its core's work queue."""

    def __init__(self, kernel: "Kernel", core_id: int, queue: Store):
        super().__init__(
            kernel,
            name=f"kworker/{core_id}",
            kind=KIND_KWORKER,
            priority=PRIO_NORMAL,
            pinned_core=core_id,
        )
        self.queue = queue
        self.items_serviced = 0

    def body(self) -> Generator:
        kernel = self.kernel
        tracer = kernel.tracer
        while True:
            item = yield from self.wait(self.queue.get())
            if item.is_ssr and kernel.qos_governor is not None:
                yield from kernel.qos_governor.gate(self)
            if item.on_start is not None:
                item.on_start(kernel)
            service_start = self.env.now
            yield from self.run_for(item.service_ns)
            if tracer.enabled:
                core_id = self.core.id if self.core is not None else self.pinned_core
                tracer.span(
                    "kworker.service", "work", core_id,
                    service_start, self.env.now,
                    args={"item": item.name, "ssr": item.is_ssr,
                          "queue_wait_ns": service_start - item.enqueued_at},
                )
                tracer.metrics.counter("wq.items").inc()
                tracer.metrics.histogram("wq.queue_wait_ns").record(
                    max(0.0, service_start - item.enqueued_at)
                )
            if item.is_ssr:
                core = self.core
                kernel.charge_ssr(
                    item.service_ns,
                    CH_WORKER,
                    item.ssr_kind or item.name,
                    core.id if core is not None else self.pinned_core,
                    victim=(
                        core.last_thread.name
                        if core is not None and core.last_thread is not None
                        else None
                    ),
                )
            if item.footprint is not None and self.core is not None:
                # The pollution victim is whoever this worker displaced.
                self.core._run_kernel_window(
                    item.footprint[0], item.footprint[1], self.core.last_thread
                )
            self.items_serviced += 1
            if item.on_done is not None:
                item.on_done(kernel)


class WorkQueues:
    """The system's per-core work queues plus the spill placement policy."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._queues: List[Store] = [
            Store(kernel.env) for _ in range(kernel.config.cpu.num_cores)
        ]
        self._workers: List[KWorker] = [
            KWorker(kernel, core_id, queue)
            for core_id, queue in enumerate(self._queues)
        ]

    @property
    def workers(self) -> List[KWorker]:
        return self._workers

    def start(self) -> None:
        for worker in self._workers:
            worker.start()

    def backlog(self, core_id: int) -> int:
        return len(self._queues[core_id])

    def queue_work(self, origin_core_id: int, item: WorkItem) -> int:
        """Queue ``item``, preferring the origin core; returns the target."""
        item.enqueued_at = self.kernel.env.now
        target = self._select_core(origin_core_id)
        # The insertion cost itself is charged by the enqueuing context as
        # part of its timed handler/pre-processing work (charging it here
        # directly would create time out of thin air and break the
        # every-nanosecond-accounted invariant).
        if item.is_ssr:
            self.kernel.charge_ssr(
                self.kernel.config.os_path.queue_work_ns,
                CH_ENQUEUE,
                item.ssr_kind or item.name,
                target,
            )
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "work.enqueue", "work", target, self.kernel.env.now,
                args={"item": item.name, "origin": origin_core_id,
                      "backlog": self.backlog(target)},
            )
        accepted = self._queues[target].try_put(item)
        if not accepted:  # pragma: no cover - stores are unbounded
            raise RuntimeError("work queue rejected an item")
        return target

    def _select_core(self, origin_core_id: int) -> int:
        if self.backlog(origin_core_id) < SPILL_BACKLOG_THRESHOLD:
            return origin_core_id
        cores = self.kernel.cores
        relaxed_awake = [
            c.id
            for c in cores
            if not c.is_sleeping and self.backlog(c.id) < SPILL_BACKLOG_THRESHOLD
        ]
        if relaxed_awake:
            return min(relaxed_awake, key=lambda cid: (self.backlog(cid), cid))
        # Every awake worker is saturated: waking a sleeping core beats
        # unbounded queueing delay.
        return min(
            (c.id for c in cores), key=lambda cid: (self.backlog(cid), cid)
        )
