"""Schedulable threads and the CPU-grant protocol.

A :class:`Thread` is a simulation process that cooperates with the
scheduler: it asks for a CPU, runs in *segments* (interrupted by hard IRQs,
preemption, or timeslice expiry), and releases the core when blocking.

Interference plumbing lives here too: when a kernel SSR handler pollutes a
core's cache/predictor, the disturbance is charged to the victim thread as
*stall time* at the start of its next run segment (the paper's indirect
overhead — segment 'b' of Figure 2), and tallied for the Figure 5 counters.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from ..profiling.ledger import CH_POLLUTION
from ..sim import Event, Interrupt
from . import accounting as acct

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .cpu import Core
    from .kernel import Kernel

#: Priorities (lower value runs first).
PRIO_KTHREAD = 0
PRIO_NORMAL = 1
PRIO_IDLE = 2

#: Thread kinds.
KIND_USER = "user"
KIND_KTHREAD = "kthread"
KIND_KWORKER = "kworker"
KIND_DAEMON = "daemon"
KIND_IDLE = "idle"

#: Accounting mode for each thread kind's own execution.
_KIND_MODE = {
    KIND_USER: acct.USER,
    KIND_KTHREAD: acct.KERNEL,
    KIND_KWORKER: acct.KERNEL,
    KIND_DAEMON: acct.KERNEL,
    KIND_IDLE: acct.IDLE,
}


class Thread:
    """A schedulable execution context.

    Subclasses implement :meth:`body` as a generator that uses
    :meth:`run_for` to consume CPU time and :meth:`wait` / :meth:`sleep`
    to block off-CPU.
    """

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        kind: str = KIND_USER,
        priority: int = PRIO_NORMAL,
        pinned_core: Optional[int] = None,
    ):
        if kind not in _KIND_MODE:
            raise ValueError(f"unknown thread kind {kind!r}")
        self.kernel = kernel
        self.env = kernel.env
        self.name = name
        self.kind = kind
        self.priority = priority
        self.pinned_core = pinned_core
        self.mode = _KIND_MODE[kind]

        self.process = None
        self.started = False
        self.finished = False
        #: True while sitting in a runqueue awaiting a grant.
        self.queued = False
        #: Core currently granted to this thread (None while blocked/queued).
        self.core: Optional["Core"] = None
        #: Last core this thread ran on (wake-placement affinity).
        self.last_core_id: Optional[int] = None
        #: Set by a waker running on some core just before waking this
        #: thread, so the scheduler can attribute (and IPI-charge) the wake.
        self.wake_origin_core: Optional[int] = None
        #: True only while suspended at an interruptible yield point.
        self.interruptible = False
        self._grant: Optional[Event] = None

        # --- interference bookkeeping -------------------------------
        #: Fraction of the L1 / predictor a kernel handler's footprint
        #: overlaps with this thread's state (0 for kernel threads: they
        #: have no performance-critical warm state to lose).
        self.cache_coverage = 0.0
        self.predictor_coverage = 0.0
        #: Probability an evicted line/entry would have been reused;
        #: None falls back to the config default.
        self.reuse_probability: Optional[float] = None
        self._pending_lines = 0.0
        self._pending_entries = 0.0
        self._stall_carry_ns = 0.0
        #: Total productive CPU time (excludes IRQs, switches, stalls).
        self.productive_ns = 0.0
        #: Stall time repaid for kernel pollution of cache/predictor.
        self.pollution_stall_ns = 0.0
        #: Estimated extra misses / mispredicts caused by SSR handlers.
        self.extra_misses = 0.0
        self.extra_mispredicts = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Thread":
        """Create the simulation process and make the thread runnable."""
        if self.started:
            raise RuntimeError(f"thread {self.name} already started")
        self.started = True
        self.process = self.env.process(self._trampoline())
        self.process.name = self.name
        return self

    def body(self) -> Generator:
        """Override: the thread's behaviour (a generator)."""
        raise NotImplementedError

    def _trampoline(self) -> Generator:
        try:
            yield from self.body()
        finally:
            self.finished = True
            if self.core is not None:
                self._release_cpu(requeue=False)

    # ------------------------------------------------------------------
    # Pollution API (called by Core when SSR handlers disturb our state)
    # ------------------------------------------------------------------
    def add_disturbance(self, lines_evicted: float, entries_retrained: float) -> None:
        """Record state this thread lost to a kernel handler window."""
        self._pending_lines += lines_evicted
        self._pending_entries += entries_retrained

    def _take_stall_ns(self) -> float:
        """Convert pending disturbance into stall ns; update Fig. 5 counters."""
        cpu = self.kernel.config.cpu
        reuse = (
            self.reuse_probability
            if self.reuse_probability is not None
            else cpu.pollution_reuse_probability
        )
        scale = reuse * cpu.pollution_amplification
        extra_misses = self._pending_lines * scale
        extra_mispredicts = self._pending_entries * scale
        self._pending_lines = 0.0
        self._pending_entries = 0.0
        self.extra_misses += extra_misses
        self.extra_mispredicts += extra_mispredicts
        stall_cycles = (
            extra_misses * cpu.l1_miss_penalty_cycles
            + extra_mispredicts * cpu.branch_mispredict_penalty_cycles
        )
        new_stall = cpu.cycles_to_ns(stall_cycles)
        self.pollution_stall_ns += new_stall
        if new_stall > 0:
            ledger = self.kernel.ledger
            if ledger.enabled:
                core = self.core
                core_id = core.id if core is not None else (self.last_core_id or 0)
                # The handler that evicted our state is long gone, so the
                # cause is attributed generically to kernel SSR handling.
                ledger.charge("uarch", CH_POLLUTION, self.name, core_id, new_stall)
        stall = self._stall_carry_ns + new_stall
        self._stall_carry_ns = 0.0
        return stall

    # ------------------------------------------------------------------
    # CPU protocol
    # ------------------------------------------------------------------
    def run_for(self, duration_ns: float, on_progress=None) -> Generator:
        """Consume ``duration_ns`` of *productive* CPU time.

        Wall-clock time may be longer: hard IRQs, preemption, context
        switches, and pollution stalls all extend it.  ``on_progress`` is
        called with each chunk of productive nanoseconds as it completes,
        so fixed-horizon experiments see partially-completed work.
        """
        remaining = float(duration_ns)
        # Sub-nanosecond residue (stall times are fractional cycles) must
        # terminate the loop: scheduling a ~0ns timeout would spin forever.
        while remaining > 0.5:
            if self.core is None:
                yield from self._acquire_cpu()
            core = self.core
            # Service IRQs that arrived while we were off-CPU or in-switch.
            if core.has_pending_irqs():
                yield from core.service_pending_irqs(self)
            if core.should_yield(self):
                self._release_cpu(requeue=True)
                continue
            stall = self._take_stall_ns()
            self.on_segment_start(core)
            segment = max(remaining + stall, 1.0)
            core.begin_segment(self.mode, self, stall)
            start = self.env.now
            self.interruptible = True
            try:
                yield self.env.timeout(segment)
                interrupted_by = None
            except Interrupt as intr:
                interrupted_by = intr.cause
            finally:
                self.interruptible = False
            elapsed = self.env.now - start
            core.end_segment()
            productive = max(0.0, elapsed - stall)
            self._stall_carry_ns = max(0.0, stall - elapsed)
            remaining -= productive
            self.productive_ns += productive
            if on_progress is not None and productive > 0:
                on_progress(productive)
            if interrupted_by is None:
                continue
            # Requeue only if there is work left: a preemption landing at
            # the exact instant the requested duration completes must NOT
            # leave a stale runqueue entry behind (a later dispatch would
            # grant the core to this thread while it is blocked elsewhere,
            # stalling the core until it happens to wake).
            still_running = remaining > 0.5
            if interrupted_by == "irq":
                yield from core.service_pending_irqs(self)
                if core.should_yield(self):
                    self._release_cpu(requeue=still_running)
            elif interrupted_by in ("resched", "timeslice"):
                self._release_cpu(requeue=still_running)
            # Unknown causes: treat as a spurious wake and loop.
        return None

    def wait(self, event: Event) -> Generator:
        """Block off-CPU until ``event`` fires; returns its value."""
        if self.core is not None:
            self._release_cpu(requeue=False)
        while True:
            try:
                value = yield event
                return value
            except Interrupt:
                # Spurious (raced) interrupt while blocked: the event we
                # were waiting on is still pending, so wait again.
                if event.processed:
                    return event.value if event.ok else None
                continue

    def sleep(self, ns: float) -> Generator:
        """Block off-CPU for ``ns`` simulated nanoseconds."""
        yield from self.wait(self.env.timeout(ns))

    def on_segment_start(self, core: "Core") -> None:
        """Hook: called with the core right before each productive segment."""

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _acquire_cpu(self) -> Generator:
        scheduler = self.kernel.scheduler
        while self.core is None:
            if not self.queued:
                origin, self.wake_origin_core = self.wake_origin_core, None
                scheduler.enqueue(self, origin_core_id=origin)
            try:
                yield self._grant
            except Interrupt:
                # Raced interrupt while waiting for a grant: re-check state.
                continue
        core = self.core
        switch_ns = core.take_context_switch_cost(self)
        if switch_ns:
            core.begin_segment(acct.SWITCH, self, 0.0)
            yield from self._uninterruptible_delay(switch_ns)
            core.end_segment()

    def _uninterruptible_delay(self, ns: float) -> Generator:
        """Burn ``ns`` of core time, absorbing (but not losing) interrupts."""
        deadline = self.env.now + ns
        while self.env.now < deadline - 0.5:
            try:
                yield self.env.timeout(deadline - self.env.now)
            except Interrupt:
                continue

    def _release_cpu(self, requeue: bool) -> None:
        core = self.core
        if core is None:
            return
        self.core = None
        self.last_core_id = core.id
        core.relinquish(self)
        if requeue and not self.finished:
            self.kernel.scheduler.enqueue(self)
        core.dispatch()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Thread {self.name} kind={self.kind} prio={self.priority}>"
