"""The OS kernel facade: cores, scheduler, IRQ plumbing, housekeeping.

A :class:`Kernel` owns everything OS-side of the simulation.  Device models
(IOMMU, GPU) interact with it through the interrupt controller and work
queues; workloads interact through threads.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from ..config import SystemConfig
from ..sim import Environment, RngRegistry
from ..telemetry import NULL_TRACER
from . import accounting as acct
from .accounting import CounterSet, SsrAccounting, TimeAccounting
from .cpu import Core
from .idle import IdleThread
from .irq import (
    DeliveryPolicy,
    InterruptController,
    Irq,
    RoundRobinAllDeliveryPolicy,
    SingleCoreDeliveryPolicy,
    SpreadDeliveryPolicy,
)
from .scheduler import Scheduler
from .thread import KIND_DAEMON, PRIO_NORMAL, Thread
from .workqueue import WorkQueues


class HousekeepingDaemon(Thread):
    """Background kernel activity (RCU, writeback, ...): keeps the no-SSR
    sleep baseline below 100%, as on a real idle Linux box."""

    def __init__(self, kernel: "Kernel"):
        super().__init__(kernel, name="kdaemon", kind=KIND_DAEMON, priority=PRIO_NORMAL)

    def body(self) -> Generator:
        housekeeping = self.kernel.config.housekeeping
        while True:
            yield from self.run_for(housekeeping.daemon_burst_ns)
            if self.core is not None:
                self._release_cpu(requeue=False)
            yield from self.sleep(housekeeping.daemon_period_ns)


class Kernel:
    """The simulated OS instance."""

    def __init__(
        self,
        env: Environment,
        config: SystemConfig,
        rng: RngRegistry,
        tracer=None,
        ledger=None,
    ):
        self.env = env
        self.config = config
        self.rng = rng
        #: Telemetry sink shared by every layer (no-op unless tracing is on).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        env.tracer = self.tracer
        #: Interference attribution sink (no-op unless profiling is on).
        if ledger is None:
            from ..profiling import NULL_LEDGER

            ledger = NULL_LEDGER
        self.ledger = ledger

        self.accounting = TimeAccounting(config.cpu.num_cores)
        self.ssr_accounting = SsrAccounting()
        self.counters = CounterSet()
        #: user-thread owner name -> Thread, for pollution attribution.
        self.thread_registry: Dict[str, Thread] = {}
        #: Set by the System when QoS is enabled (see repro.qos.governor).
        self.qos_governor = None

        self.cores: List[Core] = [Core(self, i) for i in range(config.cpu.num_cores)]
        self.scheduler = Scheduler(self)
        self.irq_controller = InterruptController(self, self._make_delivery_policy())
        self.workqueues = WorkQueues(self)
        self._idle_threads = [IdleThread(self, core.id) for core in self.cores]
        self._daemon = HousekeepingDaemon(self)
        self._booted = False

    def _make_delivery_policy(self) -> DeliveryPolicy:
        mitigation = self.config.mitigation
        if mitigation.steer_to_single_core:
            return SingleCoreDeliveryPolicy(mitigation.steering_target)
        arbitration = self.config.iommu.msi_arbitration
        if arbitration == "round_robin_all":
            return RoundRobinAllDeliveryPolicy()
        if arbitration == "lowest_priority":
            return SpreadDeliveryPolicy()
        raise ValueError(f"unknown msi_arbitration {arbitration!r}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def boot(self) -> None:
        """Start idle threads, kworkers, timer ticks, and housekeeping."""
        if self._booted:
            raise RuntimeError("kernel already booted")
        self._booted = True
        for idle_thread in self._idle_threads:
            idle_thread.start()
        self.workqueues.start()
        self._daemon.start()
        for core in self.cores:
            self.env.process(self._timer_tick_loop(core))

    def spawn(self, thread: Thread) -> Thread:
        """Register (for pollution attribution) and start a thread."""
        self.thread_registry[thread.name] = thread
        return thread.start()

    def finalize(self) -> None:
        """Close in-flight accounting segments at the end of a measured run."""
        for core in self.cores:
            core.finalize()

    # ------------------------------------------------------------------
    # SSR cost attribution
    # ------------------------------------------------------------------
    def charge_ssr(
        self,
        ns: float,
        channel: str,
        ssr: str,
        core_id: int,
        victim: Optional[str] = None,
    ) -> None:
        """The single funnel for SSR-servicing CPU time.

        Every site that used to call ``ssr_accounting.add`` directly goes
        through here instead, so the interference ledger's service-channel
        totals reconcile with the accumulator *by construction* — the same
        nanoseconds, added once each, to both.  With profiling off the
        ledger branch costs one attribute load.
        """
        self.ssr_accounting.add(ns)
        ledger = self.ledger
        if ledger.enabled:
            ledger.charge(ssr, channel, victim, core_id, ns)

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def _timer_tick_loop(self, core: Core) -> Generator:
        """Periodic scheduler tick; suppressed while the core sleeps (NOHZ)."""
        housekeeping = self.config.housekeeping
        while True:
            yield self.env.timeout(housekeeping.timer_tick_ns)
            if core.is_sleeping:
                continue
            core.deliver_irq(
                Irq(name=f"tick/{core.id}", handler_ns=housekeeping.timer_tick_cost_ns)
            )

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def cc6_residency(self, horizon_ns: int) -> float:
        """Fraction of core-time in CC6 over ``horizon_ns`` (Fig. 4 metric)."""
        return self.accounting.residency(acct.CC6, horizon_ns)

    def interrupts_per_core(self) -> List[int]:
        return self.counters.per_core(acct.CTR_IRQ, self.config.cpu.num_cores)

    def ipis_total(self) -> int:
        return sum(self.counters.per_core(acct.CTR_IPI, self.config.cpu.num_cores))
