"""OS kernel model: threads, scheduler, cores, IRQs, work queues, C-states.

This package simulates the Linux-side machinery the paper's SSR handling
chain runs through (Figure 1): hard-IRQ top halves, a bottom-half kthread,
per-core kworkers, priority scheduling with wakeup preemption, resched
IPIs, and CC6 sleep with entry/exit latencies.
"""

from . import accounting
from .accounting import CounterSet, SsrAccounting, TimeAccounting
from .cpu import AWAKE, Core, SLEEPING, TRANSITIONING
from .idle import IdleThread
from .irq import (
    DeliveryPolicy,
    InterruptController,
    Irq,
    RoundRobinAllDeliveryPolicy,
    SingleCoreDeliveryPolicy,
    SpreadDeliveryPolicy,
)
from .kernel import HousekeepingDaemon, Kernel
from .scheduler import Scheduler
from .thread import (
    KIND_DAEMON,
    KIND_IDLE,
    KIND_KTHREAD,
    KIND_KWORKER,
    KIND_USER,
    PRIO_IDLE,
    PRIO_KTHREAD,
    PRIO_NORMAL,
    Thread,
)
from .workqueue import KWorker, WorkItem, WorkQueues

__all__ = [
    "AWAKE",
    "Core",
    "CounterSet",
    "DeliveryPolicy",
    "HousekeepingDaemon",
    "IdleThread",
    "InterruptController",
    "Irq",
    "KIND_DAEMON",
    "KIND_IDLE",
    "KIND_KTHREAD",
    "KIND_KWORKER",
    "KIND_USER",
    "KWorker",
    "Kernel",
    "PRIO_IDLE",
    "PRIO_KTHREAD",
    "PRIO_NORMAL",
    "RoundRobinAllDeliveryPolicy",
    "SLEEPING",
    "Scheduler",
    "SingleCoreDeliveryPolicy",
    "SpreadDeliveryPolicy",
    "SsrAccounting",
    "Thread",
    "TimeAccounting",
    "TRANSITIONING",
    "WorkItem",
    "WorkQueues",
    "accounting",
]
