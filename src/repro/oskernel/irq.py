"""Hard interrupts, MSI delivery policies, and inter-processor interrupts.

The delivery policy models how the IOMMU's MSI reaches a core:

* :class:`SpreadDeliveryPolicy` — lowest-priority-style arbitration that
  round-robins over *awake* cores (a core in CC6 does not participate; if
  everything sleeps, one core is woken).  Combined with the bottom-half
  kthread's wake-balance rotation (see scheduler), interrupts end up evenly
  distributed across every core — the behaviour the paper measured via
  ``/proc/interrupts``.
* :class:`SingleCoreDeliveryPolicy` — the Section V-A steering mitigation:
  all SSR interrupts hit one core (IOMMU MSI configuration registers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, TYPE_CHECKING

from . import accounting as acct

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import Core
    from .kernel import Kernel


@dataclass
class Irq:
    """One hard interrupt: handler cost, uarch footprint, side effects."""

    name: str
    handler_ns: float
    #: Called (with the servicing core) after the handler time elapses.
    action: Optional[Callable[["Core"], None]] = None
    #: Counts toward SSR servicing time (QoS accounting) when True.
    is_ssr: bool = False
    #: (cache accesses, branches) pushed through the servicing core.
    footprint: Optional[Tuple[int, int]] = None
    payload: object = None


class DeliveryPolicy:
    """Chooses which core an MSI is delivered to."""

    def select(self, kernel: "Kernel") -> "Core":
        raise NotImplementedError


class SpreadDeliveryPolicy(DeliveryPolicy):
    """Lowest-priority-style MSI arbitration.

    Awake *idle* cores win first (they are at the lowest interrupt
    priority), then awake busy cores in rotation (which is what produces
    the even ``/proc/interrupts`` distribution the paper measured when all
    cores run application threads); a sleeping core is woken only when
    everything sleeps."""

    def __init__(self):
        self._rotation = 0
        self._last_idle_target: Optional[int] = None

    @staticmethod
    def _is_idle(core: "Core") -> bool:
        current = core.current
        return current is None or current.kind == "idle"

    def select(self, kernel: "Kernel") -> "Core":
        cores = kernel.cores
        n = len(cores)
        # Sticky idle preference: keep hitting the same recently-idle core
        # so interrupt handling stays localized and other cores can sleep.
        last = self._last_idle_target
        if last is not None:
            candidate = cores[last]
            if not candidate.is_sleeping and self._is_idle(candidate):
                return candidate
        awake_idle = None
        awake_busy = None
        for offset in range(1, n + 1):
            candidate = cores[(self._rotation + offset) % n]
            if candidate.is_sleeping:
                continue
            if self._is_idle(candidate) and awake_idle is None:
                awake_idle = candidate
            elif awake_busy is None:
                awake_busy = candidate
        if awake_idle is not None:
            self._last_idle_target = awake_idle.id
            return awake_idle
        if awake_busy is not None:
            # All awake cores run application threads: rotate for the even
            # distribution the paper measured under CPU load.
            self._rotation = awake_busy.id
            return awake_busy
        # Everyone is asleep: wake cores in rotation.
        self._rotation = (self._rotation + 1) % n
        self._last_idle_target = self._rotation
        return cores[self._rotation]


class RoundRobinAllDeliveryPolicy(DeliveryPolicy):
    """Naive hardware round-robin over every core, sleeping or not.

    An ablation of the default lowest-priority arbitration: this policy
    wakes CC6 cores for interrupt delivery, which destroys sleep residency
    for even moderate SSR rates (see tests and DESIGN.md 5.1)."""

    def __init__(self):
        self._rotation = 0

    def select(self, kernel: "Kernel") -> "Core":
        cores = kernel.cores
        self._rotation = (self._rotation + 1) % len(cores)
        return cores[self._rotation]


class SingleCoreDeliveryPolicy(DeliveryPolicy):
    """Steer every SSR interrupt to one core (mitigation, Section V-A)."""

    def __init__(self, target: int):
        self.target = target

    def select(self, kernel: "Kernel") -> "Core":
        return kernel.cores[self.target]


class InterruptController:
    """Delivers device MSIs and inter-processor interrupts to cores."""

    def __init__(self, kernel: "Kernel", policy: DeliveryPolicy):
        self.kernel = kernel
        self.policy = policy

    def raise_msi(self, irq: Irq) -> "Core":
        """Deliver a device interrupt according to the steering policy."""
        core = self.policy.select(self.kernel)
        if irq.is_ssr:
            self.kernel.counters.bump(acct.CTR_SSR_INTERRUPT)
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "msi.raise", "irq", core.id, self.kernel.env.now,
                args={"irq": irq.name, "ssr": irq.is_ssr},
            )
            tracer.metrics.counter("msi.raised").inc()
        core.deliver_irq(irq)
        return core

    def send_resched_ipi(self, target_core_id: int, origin_core_id: int) -> None:
        """Cross-core reschedule kick (counted; the paper saw a 477x jump)."""
        kernel = self.kernel
        os_path = kernel.config.os_path
        kernel.counters.bump(f"{acct.CTR_IPI}:{target_core_id}")
        tracer = kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "ipi.send", "ipi", target_core_id, kernel.env.now,
                args={"kind": "resched", "origin": origin_core_id},
            )
            tracer.metrics.counter("ipi.sent").inc()
        # The sender's cost of putting the IPI on the wire is part of its
        # already-charged handler time.
        irq = Irq(
            name="resched-ipi",
            handler_ns=os_path.ipi_receive_ns,
            action=_resched_action,
            is_ssr=False,
            footprint=None,
        )
        kernel.cores[target_core_id].deliver_irq(irq)

    def send_wake_ipi(self, target_core_id: int) -> None:
        """Wake a sleeping core on behalf of an anonymous context (timers)."""
        kernel = self.kernel
        kernel.counters.bump(f"{acct.CTR_IPI}:{target_core_id}")
        tracer = kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "ipi.send", "ipi", target_core_id, kernel.env.now,
                args={"kind": "wake"},
            )
            tracer.metrics.counter("ipi.sent").inc()
        irq = Irq(
            name="wake-ipi",
            handler_ns=kernel.config.os_path.ipi_receive_ns,
            action=_resched_action,
        )
        kernel.cores[target_core_id].deliver_irq(irq)


def _resched_action(core: "Core") -> None:
    """On IPI receipt: reschedule if someone better is waiting."""
    current = core.current
    if current is None:
        core.dispatch()
        return
    scheduler = core.kernel.scheduler
    if scheduler.has_work(core) and (
        current.kind == "idle"
        or any(core.runqueue[p] for p in range(current.priority))
        or core.runqueue[current.priority]
    ):
        core.preempt("resched")
