"""The per-core idle thread and CC6 sleep management.

Each core always has a runnable idle thread at the lowest priority.  When
granted the core, it services stray IRQs, waits out the C-state entry grace
period, and drops into CC6 (paying entry latency and flushing the L1, per
AMD Family 15h behaviour).  Interrupts or wakeups pay the CC6 exit latency
— which is why the paper observes that *sleeping* CPUs respond slightly
slower to SSRs than busy-but-preemptible ones.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from ..profiling.ledger import CH_CC6_WAKEUP
from ..sim import Interrupt
from . import accounting as acct
from .cpu import AWAKE, SLEEPING, TRANSITIONING
from .thread import KIND_IDLE, PRIO_IDLE, Thread

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class IdleThread(Thread):
    """The swapper: occupies a core when nothing else is runnable."""

    def __init__(self, kernel: "Kernel", core_id: int):
        super().__init__(
            kernel,
            name=f"swapper/{core_id}",
            kind=KIND_IDLE,
            priority=PRIO_IDLE,
            pinned_core=core_id,
        )

    def body(self) -> Generator:
        cstate = self.kernel.config.cstate
        scheduler = self.kernel.scheduler
        while True:
            if self.core is None:
                yield from self._acquire_cpu()
            core = self.core
            if core.has_pending_irqs():
                yield from core.service_pending_irqs(self)
                continue
            if scheduler.has_work(core):
                self._release_cpu(requeue=True)
                continue

            # Awake-idle: wait out the grace period before deep sleep.
            core.begin_segment(acct.IDLE, self, 0.0)
            self.interruptible = True
            try:
                yield self.env.timeout(cstate.entry_grace_ns)
                grace_elapsed = True
            except Interrupt:
                grace_elapsed = False
            finally:
                self.interruptible = False
            core.end_segment()
            if not grace_elapsed:
                continue  # handle whatever woke us at the top of the loop

            # Enter CC6.
            core.sleep_state = TRANSITIONING
            core.begin_segment(acct.TRANSITION, self, 0.0)
            yield from self._uninterruptible_delay(cstate.entry_latency_ns)
            core.end_segment()
            if core.has_pending_irqs() or scheduler.has_work(core):
                # A wakeup raced the entry transition: abort the sleep
                # instead of parking with work queued (lost-wakeup hazard).
                core.sleep_state = AWAKE
                continue
            if cstate.flush_caches_on_entry:
                core.uarch.flush_for_deep_sleep()
            core.sleep_state = SLEEPING
            tracer = self.kernel.tracer
            if tracer.enabled:
                tracer.instant("cc6.enter", "cstate", core.id, self.env.now)
                tracer.metrics.counter("cc6.entries").inc()

            core.begin_segment(acct.CC6, self, 0.0)
            self.interruptible = True
            try:
                yield self.env.event()  # sleep until something interrupts us
            except Interrupt:
                pass
            finally:
                self.interruptible = False
            core.end_segment()

            # Exit latency: the wake reason (IRQ/resched) waits this long.
            self.kernel.counters.bump(acct.CTR_CORE_WAKEUP)
            if tracer.enabled:
                tracer.instant("cc6.exit", "cstate", core.id, self.env.now)
            ledger = self.kernel.ledger
            if ledger.enabled:
                # If an SSR interrupt is what woke this core, the exit
                # latency is interference it caused (paid in TRANSITION
                # mode, hence a side channel, not a service channel).
                ssr_irq = next((i for i in core.pending_irqs if i.is_ssr), None)
                if ssr_irq is not None:
                    ledger.charge(
                        ssr_irq.name, CH_CC6_WAKEUP, self.name, core.id,
                        cstate.exit_latency_ns,
                    )
            core.sleep_state = TRANSITIONING
            core.begin_segment(acct.TRANSITION, self, 0.0)
            yield from self._uninterruptible_delay(cstate.exit_latency_ns)
            core.end_segment()
            core.sleep_state = AWAKE
