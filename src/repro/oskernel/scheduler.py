"""Thread placement and wakeup/preemption policy.

The placement rules encode the Linux behaviours the paper's interference
story depends on:

* **Bottom-half kthreads** are wake-balanced in rotation across all cores —
  the scheduler's idle-core search keeps dragging the IOMMU driver's kthread
  onto (possibly sleeping) cores, waking them with resched IPIs.  This is
  what makes the default configuration both spread interference everywhere
  and destroy CC6 residency (Sections IV-B/IV-C, 477x IPI increase).
* **User threads** have sticky affinity: they stay on their last core unless
  it is contended, so PARSEC's one-thread-per-core layout is stable.
* **Pinned threads** (steering mitigation, per-core kworkers) always go to
  their core.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from .thread import KIND_IDLE, KIND_KTHREAD, PRIO_KTHREAD, PRIO_NORMAL, Thread

if TYPE_CHECKING:  # pragma: no cover
    from .cpu import Core
    from .kernel import Kernel


class Scheduler:
    """Global scheduler over per-core runqueues."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._kthread_rotation = 0

    @property
    def cores(self):
        return self.kernel.cores

    # ------------------------------------------------------------------
    # Wakeup path
    # ------------------------------------------------------------------
    def enqueue(self, thread: Thread, origin_core_id: Optional[int] = None) -> None:
        """Make ``thread`` runnable; place it and kick the chosen core.

        ``origin_core_id`` identifies the core whose execution performed the
        wakeup (e.g., a top-half handler scheduling the bottom half).  A
        cross-core wakeup that must disturb the target core is delivered via
        a resched IPI, which is counted — the paper's 477x IPI observation.
        """
        if thread.finished or thread.queued or thread.core is not None:
            return
        thread._grant = self.kernel.env.event()
        thread.queued = True
        core = self._place(thread)
        core.runqueue[thread.priority].append(thread)
        self._kick(core, thread, origin_core_id)

    def _place(self, thread: Thread) -> "Core":
        cores = self.cores
        if thread.pinned_core is not None:
            return cores[thread.pinned_core]
        if thread.kind == KIND_KTHREAD:
            # Wake-balance rotation: the idle-core search lands somewhere new
            # almost every wakeup (idle and sleeping cores look best).
            self._kthread_rotation = (self._kthread_rotation + 1) % len(cores)
            return cores[self._kthread_rotation]
        last = thread.last_core_id
        if last is not None and self._core_is_quiet(cores[last]):
            return cores[last]
        # Shallow-idle preference: land on an awake core when one exists
        # (waking a CC6 core costs latency and power), like Linux's
        # select_idle_sibling biasing away from deep idle states.
        awake = [c for c in cores if not c.is_sleeping]
        candidates = awake if awake else cores
        return min(candidates, key=lambda c: (c.load(), c.id))

    @staticmethod
    def _core_is_quiet(core: "Core") -> bool:
        """True if placing here wins immediately (idle, empty queues)."""
        if core.runqueue[PRIO_KTHREAD] or core.runqueue[PRIO_NORMAL]:
            return False
        return core.current is None or core.current.kind == KIND_IDLE

    def _kick(self, core: "Core", thread: Thread, origin_core_id: Optional[int]) -> None:
        needs_disturb = core.is_sleeping or self._needs_preempt(core, thread)
        if (
            needs_disturb
            and origin_core_id is not None
            and origin_core_id != core.id
        ):
            self.kernel.irq_controller.send_resched_ipi(core.id, origin_core_id)
            return
        if core.is_sleeping:
            # Waking a CC6 core always costs an interrupt, even when the
            # waker's core is unknown (timer-driven wakeups) — this is the
            # baseline IPI traffic the SSR-driven 477x increase sits on.
            self.kernel.irq_controller.send_wake_ipi(core.id)
            return
        if core.current is None:
            core.dispatch()
        elif self._needs_preempt(core, thread):
            core.preempt("resched")
        elif core.current.priority == thread.priority:
            core.request_preempt_check()

    @staticmethod
    def _needs_preempt(core: "Core", thread: Thread) -> bool:
        current = core.current
        return current is not None and thread.priority < current.priority

    # ------------------------------------------------------------------
    # Queries used by cores and idle threads
    # ------------------------------------------------------------------
    def has_work(self, core: "Core") -> bool:
        """True if a non-idle thread is queued on ``core``."""
        return bool(core.runqueue[PRIO_KTHREAD] or core.runqueue[PRIO_NORMAL])
