"""The CPU core model.

A :class:`Core` is a passive arbiter: the thread that currently holds it
executes everything, including hard-IRQ top halves (``service_pending_irqs``
is a generator the occupying thread runs).  The core tracks time segments
so every nanosecond lands in exactly one accounting bucket, drives the
timeslice/preemption timers, and owns the microarchitectural state that
user threads and kernel handlers share.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple, TYPE_CHECKING

from ..profiling.ledger import CH_IPI, CH_MODE_SWITCH, CH_TOP_HALF
from ..uarch import AddressStreamSpec, BranchStreamSpec, CoreUarchState
from . import accounting as acct
from .thread import KIND_IDLE, KIND_USER, PRIO_IDLE, PRIO_KTHREAD, PRIO_NORMAL, Thread

if TYPE_CHECKING:  # pragma: no cover
    from .irq import Irq
    from .kernel import Kernel

#: Kernel text/data lives in its own address region, shared by all handlers
#: (so successive handlers enjoy realistic reuse of each other's lines).
KERNEL_ADDRESS_BASE = 0xFFFF_0000_0000
KERNEL_PC_BASE = 0xFFFF_8000_0000

#: Sampled user window size (accesses, branches) and its per-owner rate cap.
USER_WINDOW_ACCESSES = 128
USER_WINDOW_BRANCHES = 64
USER_WINDOW_MIN_INTERVAL_NS = 25_000

#: Core sleep states.
AWAKE = "awake"
SLEEPING = "cc6"
TRANSITIONING = "transition"


class Core:
    """One CPU core: runqueue, IRQ intake, accounting segments, uarch state."""

    def __init__(self, kernel: "Kernel", core_id: int):
        self.kernel = kernel
        self.env = kernel.env
        self.config = kernel.config
        self.id = core_id
        self.runqueue: Dict[int, Deque[Thread]] = {
            PRIO_KTHREAD: deque(),
            PRIO_NORMAL: deque(),
            PRIO_IDLE: deque(),
        }
        self.current: Optional[Thread] = None
        self.last_thread: Optional[Thread] = None
        self.pending_irqs: Deque["Irq"] = deque()
        self.sleep_state = AWAKE
        self.uarch = CoreUarchState(
            self.config.cpu.uarch, kernel.rng.stream(f"uarch:{core_id}")
        )
        self._segment: Optional[Tuple[str, int, Optional[Thread], float]] = None
        self._grant_generation = 0
        self._grant_time = 0
        self._need_resched = False
        self._preempt_check_armed = False
        self._last_user_window: Dict[str, int] = {}
        self._kernel_stream_cache: Dict[
            Tuple[int, int], Tuple[AddressStreamSpec, BranchStreamSpec]
        ] = {}

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def is_sleeping(self) -> bool:
        return self.sleep_state == SLEEPING

    def load(self) -> int:
        """Runnable non-idle threads (queued plus running)."""
        load = len(self.runqueue[PRIO_KTHREAD]) + len(self.runqueue[PRIO_NORMAL])
        if self.current is not None and self.current.kind != KIND_IDLE:
            load += 1
        return load

    def has_pending_irqs(self) -> bool:
        return bool(self.pending_irqs)

    # ------------------------------------------------------------------
    # Dispatch / preemption
    # ------------------------------------------------------------------
    def dispatch(self) -> None:
        """Grant the core to the best queued thread if it is free."""
        if self.current is not None:
            return
        thread = self._pick()
        if thread is None:
            return
        self.current = thread
        thread.core = self
        self._grant_generation += 1
        self._grant_time = self.env.now
        self._need_resched = False
        self._preempt_check_armed = False
        thread._grant.succeed(self)
        self._arm_timeslice(thread)

    def _pick(self) -> Optional[Thread]:
        for priority in (PRIO_KTHREAD, PRIO_NORMAL, PRIO_IDLE):
            queue = self.runqueue[priority]
            if queue:
                thread = queue.popleft()
                thread.queued = False
                return thread
        return None

    def relinquish(self, thread: Thread) -> None:
        """Called by a thread giving up the core (block, requeue, or exit)."""
        if self.current is thread:
            self.current = None
            self.last_thread = thread
            self._need_resched = False

    def take_context_switch_cost(self, thread: Thread) -> int:
        """Context-switch penalty for ``thread`` taking over the core."""
        if self.last_thread is thread or self.last_thread is None:
            return 0
        self.kernel.counters.bump(acct.CTR_CONTEXT_SWITCH)
        return self.config.scheduler.context_switch_ns

    def should_yield(self, thread: Thread) -> bool:
        """True if ``thread`` must give the core back before running more."""
        for priority in range(thread.priority):
            if self.runqueue[priority]:
                return True
        if self._need_resched and self.kernel.scheduler.has_work(self):
            return True
        if (
            self.runqueue[thread.priority]
            and self.env.now - self._grant_time >= self.config.scheduler.timeslice_ns
        ):
            return True
        return False

    def preempt(self, reason: str) -> None:
        """Ask the current thread to reschedule as soon as possible."""
        thread = self.current
        if thread is None:
            self.dispatch()
            return
        if thread.interruptible:
            thread.process.interrupt(reason)
        else:
            self._need_resched = True

    def request_preempt_check(self) -> None:
        """A same-priority thread was enqueued: bound its wait by the
        wakeup granularity (CFS-style wakeup preemption)."""
        if self._preempt_check_armed or self.current is None:
            return
        granularity = self.config.scheduler.wakeup_granularity_ns
        elapsed = self.env.now - self._grant_time
        delay = max(0, granularity - elapsed)
        self._preempt_check_armed = True
        self.env.call_later(delay, self._preempt_check)

    def _preempt_check(self) -> None:
        """Wakeup-preemption poll: keeps same-priority waiters' latency
        bounded by the granularity even across regrants (a waiter must not
        sit behind a full timeslice just because the core changed hands)."""
        self._preempt_check_armed = False
        current = self.current
        if current is None:
            self.dispatch()
            return
        waiting = any(
            self.runqueue[priority] for priority in range(current.priority + 1)
        )
        if not waiting:
            return
        granularity = self.config.scheduler.wakeup_granularity_ns
        elapsed = self.env.now - self._grant_time
        if elapsed >= granularity - 0.5 or self.kernel.scheduler._needs_preempt(
            self, current
        ):
            self.preempt("timeslice")
            # Re-arm so the next grantee is also bounded while contended.
            self._preempt_check_armed = True
            self.env.call_later(granularity, self._preempt_check)
        else:
            # Floor the re-arm delay: a sub-ns residue would re-fire at the
            # same instant forever (float time resolution).
            self._preempt_check_armed = True
            self.env.call_later(
                max(granularity - elapsed, 1_000), self._preempt_check
            )

    def _arm_timeslice(self, thread: Thread) -> None:
        if thread.priority == PRIO_IDLE or not self.runqueue[thread.priority]:
            return
        generation = self._grant_generation
        self.env.call_later(
            self.config.scheduler.timeslice_ns,
            lambda: self._timeslice_expired(generation),
        )

    def _timeslice_expired(self, generation: int) -> None:
        if generation != self._grant_generation or self.current is None:
            return
        if self.runqueue[self.current.priority]:
            self.preempt("timeslice")

    # ------------------------------------------------------------------
    # IRQ intake and servicing
    # ------------------------------------------------------------------
    def deliver_irq(self, irq: "Irq") -> None:
        """Queue a hard IRQ; poke whoever occupies the core."""
        self.pending_irqs.append(irq)
        self.kernel.counters.bump(f"{acct.CTR_IRQ}:{self.id}")
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "irq.deliver", "irq", self.id, self.env.now,
                args={"irq": irq.name, "ssr": irq.is_ssr,
                      "core_sleeping": self.is_sleeping},
            )
        thread = self.current
        if thread is not None and thread.interruptible:
            thread.process.interrupt("irq")
        # Otherwise the occupying thread notices at its next segment
        # boundary (pending IRQs are always drained before running).

    def service_pending_irqs(self, thread: Thread) -> None:
        """Generator: ``thread`` executes all queued top halves inline.

        Charges hard-IRQ time (and user<->kernel mode crossings when the
        victim is a user thread), pushes each handler's footprint through
        this core's cache/predictor, and runs handler side effects.
        """
        if not self.pending_irqs:
            return
        is_user = thread.kind == KIND_USER
        ledger = self.kernel.ledger
        mode_switch_ns = self.config.scheduler.mode_switch_ns
        if is_user:
            # Attribute the entry crossing if an SSR interrupt is what the
            # drain is about to service (late arrivals charge on exit).
            if ledger.enabled:
                entry_ssr = next((i.name for i in self.pending_irqs if i.is_ssr), None)
                if entry_ssr is not None:
                    ledger.charge(
                        entry_ssr, CH_MODE_SWITCH, thread.name, self.id, mode_switch_ns
                    )
            yield from self._charge(acct.SWITCH, thread, mode_switch_ns)
        tracer = self.kernel.tracer
        last_ssr_name = None
        while self.pending_irqs:
            irq = self.pending_irqs.popleft()
            handler_ns = irq.handler_ns
            top_half_start = self.env.now
            yield from self._charge(acct.IRQ, thread, handler_ns)
            if tracer.enabled:
                tracer.span(
                    f"irq:{irq.name}", "irq", self.id,
                    top_half_start, self.env.now,
                    args={"victim": thread.name, "ssr": irq.is_ssr},
                )
                tracer.metrics.histogram("irq.handler_ns").record(handler_ns)
            if irq.is_ssr:
                last_ssr_name = irq.name
                self.kernel.charge_ssr(
                    handler_ns, CH_TOP_HALF, irq.name, self.id, victim=thread.name
                )
            elif ledger.enabled and irq.name.endswith("-ipi"):
                ledger.charge(irq.name, CH_IPI, thread.name, self.id, handler_ns)
            if irq.footprint is not None:
                self._run_kernel_window(irq.footprint[0], irq.footprint[1], thread)
            if irq.action is not None:
                irq.action(self)
        if is_user:
            if ledger.enabled and last_ssr_name is not None:
                ledger.charge(
                    last_ssr_name, CH_MODE_SWITCH, thread.name, self.id, mode_switch_ns
                )
            yield from self._charge(acct.SWITCH, thread, mode_switch_ns)

    def _charge(self, mode: str, thread: Thread, ns: float) -> None:
        """Generator: burn ``ns`` of core time in ``mode`` (uninterruptibly)."""
        if ns <= 0:
            return
        self.begin_segment(mode, thread, 0.0)
        yield from thread._uninterruptible_delay(ns)
        self.end_segment()

    # ------------------------------------------------------------------
    # Microarchitectural windows
    # ------------------------------------------------------------------
    def _kernel_streams(
        self, lines: int, branches: int
    ) -> Tuple[AddressStreamSpec, BranchStreamSpec]:
        key = (lines, branches)
        specs = self._kernel_stream_cache.get(key)
        if specs is None:
            line_size = self.config.cpu.uarch.line_size
            specs = (
                AddressStreamSpec(
                    base=KERNEL_ADDRESS_BASE,
                    lines=max(1, lines * 2),
                    hot_fraction=0.5,
                    hot_rate=0.7,
                    line_size=line_size,
                ),
                BranchStreamSpec(base_pc=KERNEL_PC_BASE, sites=max(1, branches * 2), bias=0.85),
            )
            self._kernel_stream_cache[key] = specs
        return specs

    def _run_kernel_window(
        self, lines: int, branches: int, victim: Optional[Thread]
    ) -> None:
        """Push a kernel handler's footprint through this core's structures
        and charge the resulting disturbance to the victim thread.

        The stream itself is mechanistic (it really evicts lines / retrains
        entries, which the sampled user windows observe for the Figure 5
        counters).  The *performance charge*, however, is analytic:
        ``footprint x coverage`` of the interrupted thread, because the
        sparse sampled user streams structurally under-populate the shared
        structures relative to a full-rate application (see DESIGN.md).
        A handler that lands on an idle core charges no one — which is why
        idle cores absorb SSR work so cheaply (raytrace, steering)."""
        addr_spec, branch_spec = self._kernel_streams(lines, branches)
        self.uarch.run_kernel_window(addr_spec, branch_spec, lines, branches)
        if victim is None or victim.finished:
            return
        if victim.cache_coverage <= 0 and victim.predictor_coverage <= 0:
            return
        victim.add_disturbance(
            lines * victim.cache_coverage, branches * victim.predictor_coverage
        )

    def run_user_window(
        self, owner: str, addr_spec: AddressStreamSpec, branch_spec: BranchStreamSpec
    ) -> None:
        """Maintain ``owner``'s cache/predictor residency (rate-capped)."""
        last = self._last_user_window.get(owner)
        if last is not None and self.env.now - last < USER_WINDOW_MIN_INTERVAL_NS:
            return
        self._last_user_window[owner] = self.env.now
        self.uarch.run_user_window(
            owner, addr_spec, branch_spec, USER_WINDOW_ACCESSES, USER_WINDOW_BRANCHES
        )

    # ------------------------------------------------------------------
    # Accounting segments
    # ------------------------------------------------------------------
    def begin_segment(self, mode: str, thread: Optional[Thread], stall_ns: float) -> None:
        if self._segment is not None:
            raise RuntimeError(
                f"core {self.id}: nested segment {mode} inside {self._segment[0]}"
            )
        self._segment = (mode, self.env.now, thread, stall_ns)

    def end_segment(self) -> int:
        if self._segment is None:
            raise RuntimeError(f"core {self.id}: end_segment without begin")
        mode, start, thread, _stall = self._segment
        self._segment = None
        elapsed = self.env.now - start
        self.kernel.accounting.add(self.id, mode, elapsed)
        self._trace_segment(mode, start, thread, elapsed)
        return elapsed

    def _trace_segment(
        self, mode: str, start: int, thread: Optional[Thread], elapsed: float
    ) -> None:
        tracer = self.kernel.tracer
        if not tracer.enabled or elapsed <= 0:
            return
        tracer.span(
            mode, "segment", self.id, start, self.env.now,
            args={"thread": thread.name} if thread is not None else None,
        )

    def finalize(self) -> None:
        """Close the in-flight segment at the end of the measured horizon."""
        if self._segment is None:
            return
        mode, start, thread, stall = self._segment
        self._segment = None
        elapsed = self.env.now - start
        self.kernel.accounting.add(self.id, mode, elapsed)
        self._trace_segment(mode, start, thread, elapsed)
        if thread is not None and mode in (acct.USER, acct.KERNEL):
            productive = max(0.0, elapsed - stall)
            thread.productive_ns += productive
