"""Adaptive QoS: the paper's stated future work, implemented.

Section VI closes with: *"Our current mechanism needs the system
administrator to set the throttling rate.  This can possibly be avoided by
dynamically setting the throttling rate based on characteristics of the
applications running at any given time."*

:class:`AdaptiveQosGovernor` does exactly that.  Its sampler additionally
observes how much of the CPU complex is actually idle (cores running their
idle thread or sleeping) and scales the allowed SSR time budget with the
idle share: an idle host donates nearly all of its capacity to the
accelerator; a fully loaded host pins the budget to a small floor.  The
enforcement mechanism (exponential back-off in the worker, device
backpressure) is unchanged.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from .governor import QosGovernor

if TYPE_CHECKING:  # pragma: no cover
    from ..oskernel.kernel import Kernel


class AdaptiveQosGovernor(QosGovernor):
    """A governor whose threshold tracks the host's idle capacity."""

    def __init__(self, kernel: "Kernel"):
        super().__init__(kernel)
        #: EWMA of the fraction of cores with no application demand.
        self.idle_share = 1.0
        #: The currently effective (dynamic) threshold.
        self.effective_threshold = 1.0

    def _sampler(self) -> Generator:
        period = self.config.sample_period_ns
        cores = self.kernel.cores
        num_cores = len(cores)
        alpha = min(1.0, period / self.config.averaging_window_ns)
        floor = self.config.adaptive_floor
        while True:
            yield self.kernel.env.timeout(period)
            window_ns = self.kernel.ssr_accounting.take_window()
            sample = window_ns / (period * num_cores)
            self.current_fraction = (
                alpha * sample + (1.0 - alpha) * self.current_fraction
            )
            idle_now = sum(1 for core in cores if self._core_is_idle(core)) / num_cores
            self.idle_share = alpha * idle_now + (1.0 - alpha) * self.idle_share
            self.effective_threshold = floor + self.idle_share * (1.0 - floor)
            self.over_threshold = self.current_fraction > self.effective_threshold
            tracer = self.kernel.tracer
            if tracer.enabled:
                now = self.kernel.env.now
                tracer.counter_sample(
                    "qos.ssr_fraction", "qos", now, round(self.current_fraction, 6)
                )
                tracer.counter_sample(
                    "qos.effective_threshold", "qos", now,
                    round(self.effective_threshold, 6),
                )

    @staticmethod
    def _core_is_idle(core) -> bool:
        """Truly idle: running its idle thread or sleeping.

        Cores busy servicing SSRs count as *busy*: the accelerator may only
        consume capacity that would otherwise sleep, so the system settles
        at "SSR usage == idle share" — donate-idle-cycles semantics.  A
        host saturated with application threads pins the budget to the
        floor."""
        current = core.current
        return core.is_sleeping or current is None or current.kind == "idle"
