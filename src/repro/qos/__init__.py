"""CPU quality-of-service under accelerator SSRs (paper Section VI)."""

from .adaptive import AdaptiveQosGovernor
from .governor import QosGovernor

__all__ = ["AdaptiveQosGovernor", "QosGovernor"]
