"""The Section VI QoS governor: bounded SSR time via exponential back-off.

Two cooperating parts, exactly as the paper describes:

1. A background sampler periodically computes the fraction of CPU time
   spent servicing SSRs over the last window (the OS routines already
   account their SSR cycles into :class:`~repro.oskernel.accounting.SsrAccounting`).
2. The kworker consults :meth:`gate` before servicing each SSR.  While the
   measured fraction exceeds the administrator's threshold, servicing is
   delayed with exponential back-off starting at 10 µs (Figure 11).  The
   delay fills the GPU's bounded outstanding-SSR window, back-pressuring
   the accelerator without rejecting requests or modifying the device.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..oskernel.kernel import Kernel
    from ..oskernel.thread import Thread


class QosGovernor:
    """Throttles SSR servicing to a configured CPU-time budget."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.config = kernel.config.qos
        if not self.config.enabled:
            raise ValueError("QosGovernor created but qos.enabled is False")
        #: Latest sampled SSR CPU-time fraction.
        self.current_fraction = 0.0
        self.over_threshold = False
        #: Current back-off delay (0 while under threshold).
        self.delay_ns = 0
        # --- statistics ------------------------------------------------
        self.throttle_events = 0
        self.total_delay_ns = 0
        self.max_delay_ns_seen = 0
        kernel.env.process(self._sampler())

    def _sampler(self) -> Generator:
        """The kernel background thread of Section VI (metadata-only cost).

        Tracks an exponentially-weighted average of the per-window SSR
        time fraction so that enforcement reflects the recent budget use
        rather than flapping on individual quiet windows."""
        period = self.config.sample_period_ns
        cores = self.kernel.config.cpu.num_cores
        alpha = min(1.0, period / self.config.averaging_window_ns)
        while True:
            yield self.kernel.env.timeout(period)
            window_ns = self.kernel.ssr_accounting.take_window()
            sample = window_ns / (period * cores)
            self.current_fraction = (
                alpha * sample + (1.0 - alpha) * self.current_fraction
            )
            was_over = self.over_threshold
            self.over_threshold = self.current_fraction > self.config.ssr_time_threshold
            tracer = self.kernel.tracer
            if tracer.enabled:
                tracer.counter_sample(
                    "qos.ssr_fraction", "qos", self.kernel.env.now,
                    round(self.current_fraction, 6),
                )
                if was_over != self.over_threshold:
                    tracer.instant(
                        "qos.threshold_crossed", "qos", "qos", self.kernel.env.now,
                        args={"over": self.over_threshold,
                              "fraction": self.current_fraction},
                    )

    def gate(self, worker: "Thread") -> Generator:
        """Run by a kworker before servicing an SSR item (Figure 11).

        Under threshold: reset the delay and proceed.  Over threshold:
        double the delay (from 10 µs) and sleep it off-CPU, letting
        device-side backpressure build.
        """
        if not self.over_threshold:
            self.delay_ns = 0
            return
        if self.delay_ns == 0:
            self.delay_ns = self.config.initial_delay_ns
        else:
            self.delay_ns = min(self.delay_ns * 2, self.config.max_delay_ns)
        self.throttle_events += 1
        self.total_delay_ns += self.delay_ns
        if self.delay_ns > self.max_delay_ns_seen:
            self.max_delay_ns_seen = self.delay_ns
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.instant(
                "qos.backoff", "qos", "qos", self.kernel.env.now,
                args={"delay_ns": self.delay_ns, "worker": worker.name,
                      "fraction": self.current_fraction},
            )
            tracer.metrics.counter("qos.backoffs").inc()
            tracer.metrics.histogram("qos.delay_ns").record(self.delay_ns)
        yield from worker.sleep(self.delay_ns)
