#!/usr/bin/env python3
"""Project SSR interference onto accelerator-rich future SoCs.

The paper's motivation: SoCs are gaining accelerators, each a potential
SSR source, so host interference "may be exacerbated in future systems".
This example attaches an increasing number of concurrent SSR-generating
accelerators to one 4-core host and tracks CPU application performance,
sleep residency, and the fraction of CPU time consumed by SSR servicing —
with and without the QoS governor as the safety net.

Usage::

    python examples/accelerator_rich_future.py [cpu_app] [gpu_app] [max_accels]
"""

import sys
from dataclasses import replace

from repro import System, SystemConfig, gpu_app, parsec, project_accelerator_scaling


def run_with_qos(cpu_name, gpu_name, count, horizon_ns):
    config = SystemConfig().with_qos(enabled=True, ssr_time_threshold=0.05)
    system = System(config)
    system.add_cpu_app(parsec(cpu_name))
    profile = gpu_app(gpu_name)
    for index in range(count):
        system.add_gpu_workload(replace(profile, name=f"{profile.name}#{index}"))
    return system.run(horizon_ns)


def main() -> int:
    cpu_name = sys.argv[1] if len(sys.argv) > 1 else "x264"
    gpu_name = sys.argv[2] if len(sys.argv) > 2 else "xsbench"
    max_accels = int(sys.argv[3]) if len(sys.argv) > 3 else 4
    horizon_ns = 20_000_000

    print(f"Scaling {gpu_name}-style accelerators against {cpu_name} "
          f"on a 4-core host...")
    points = project_accelerator_scaling(
        cpu_name=cpu_name,
        gpu_name=gpu_name,
        max_accelerators=max_accels,
        horizon_ns=horizon_ns,
    )

    header = f"{'accels':>6s} {'cpu_perf':>9s} {'cc6%':>6s} {'ssrs/s':>9s} {'ssr_time%':>9s}"
    print()
    print("Without QoS:")
    print(header)
    print("-" * len(header))
    for point in points:
        rate = point.total_ssrs_completed / (horizon_ns / 1e9)
        print(
            f"{point.accelerators:6d} {point.cpu_relative_performance:9.3f} "
            f"{point.cc6_residency * 100:6.1f} {rate:9.0f} "
            f"{point.ssr_time_fraction * 100:9.2f}"
        )

    baseline_instructions = None
    print()
    print("With the QoS governor capping SSR time at 5%:")
    print(header)
    print("-" * len(header))
    for count in range(max_accels + 1):
        metrics = run_with_qos(cpu_name, gpu_name, count, horizon_ns)
        if baseline_instructions is None:
            baseline_instructions = metrics.cpu_app.instructions
        rate = metrics.ssr_completed / (horizon_ns / 1e9)
        print(
            f"{count:6d} {metrics.cpu_app.instructions / baseline_instructions:9.3f} "
            f"{metrics.cc6_residency * 100:6.1f} {rate:9.0f} "
            f"{metrics.ssr_time_fraction * 100:9.2f}"
        )
    print()
    print("Unchecked, each added accelerator eats CPU performance and sleep;")
    print("the governor holds the host's budget at the configured cap.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
