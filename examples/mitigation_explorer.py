#!/usr/bin/env python3
"""Explore the Section V mitigation space for a chosen workload pair.

Sweeps all eight combinations of interrupt steering, interrupt coalescing,
and the monolithic bottom-half handler for one CPU/GPU pairing, prints the
trade-off table, and marks the Pareto-optimal configurations — a
single-pair version of the paper's Figures 7/8.

Usage::

    python examples/mitigation_explorer.py [cpu_app] [gpu_app] [horizon_ms]
    python examples/mitigation_explorer.py facesim sssp 20
"""

import sys

from repro import (
    ALL_COMBINATIONS,
    ParetoPoint,
    System,
    SystemConfig,
    combination,
    gpu_app,
    pareto_frontier,
    parsec,
)


def run(cpu_name, gpu_name, config, ssr_enabled, horizon_ns):
    system = System(config)
    if cpu_name:
        system.add_cpu_app(parsec(cpu_name))
    system.add_gpu_workload(gpu_app(gpu_name), ssr_enabled=ssr_enabled)
    return system.run(horizon_ns)


def gpu_metric(metrics, gpu_name):
    if gpu_name == "ubench":
        return metrics.gpu.faults_completed
    return metrics.gpu.progress_ns


def main() -> int:
    cpu_name = sys.argv[1] if len(sys.argv) > 1 else "facesim"
    gpu_name = sys.argv[2] if len(sys.argv) > 2 else "sssp"
    horizon_ns = int(float(sys.argv[3]) * 1e6) if len(sys.argv) > 3 else 20_000_000
    base_config = SystemConfig()

    print(f"Sweeping mitigations for {cpu_name} x {gpu_name}...")
    cpu_baseline = run(cpu_name, gpu_name, base_config, False, horizon_ns)
    gpu_baseline = run(None, gpu_name, base_config, True, horizon_ns)

    points = []
    extras = {}
    for label in ALL_COMBINATIONS:
        config = combination(base_config, label)
        metrics = run(cpu_name, gpu_name, config, True, horizon_ns)
        cpu_perf = metrics.cpu_app.instructions / cpu_baseline.cpu_app.instructions
        gpu_perf = gpu_metric(metrics, gpu_name) / gpu_metric(gpu_baseline, gpu_name)
        points.append(ParetoPoint(label, cpu_perf, gpu_perf))
        extras[label] = metrics

    frontier = {p.label for p in pareto_frontier(points)}
    print()
    header = f"{'combination':64s} {'cpu':>6s} {'gpu':>6s} {'lat_us':>8s} {'ipis':>6s}  pareto"
    print(header)
    print("-" * len(header))
    for point in sorted(points, key=lambda p: -p.cpu_performance):
        metrics = extras[point.label]
        marker = "  *" if point.label in frontier else ""
        print(
            f"{point.label:64s} {point.cpu_performance:6.3f} {point.gpu_performance:6.3f} "
            f"{metrics.gpu.mean_ssr_latency_ns / 1e3:8.1f} {metrics.ipis:6d}{marker}"
        )
    print()
    print("* = Pareto optimal (no combination beats it on both axes)")
    if "Default" not in frontier:
        print("Note: the default configuration is NOT Pareto optimal — the")
        print("paper's central observation about these mitigations.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
