#!/usr/bin/env python3
"""A collaborative CPU-GPU pipeline built on GPU signals.

The paper notes (Section III) that benchmarks which simultaneously use
CPUs and GPUs were only beginning to appear, and that SSR interference
"would also harm such applications".  This example builds one: a
producer-consumer pipeline where the GPU processes batches and *signals*
a host consumer thread after each one (the S_SENDMSG path of Section
II-C), while that same host also runs an unrelated CPU application.

It then shows the paper's effect inside a single application: turning on
a second, fault-storming accelerator degrades both the pipeline's batch
rate and its signal latency.

Usage::

    python examples/collaborative_pipeline.py [horizon_ms]
"""

import sys

from repro import System, SystemConfig, gpu_app, parsec
from repro.oskernel.thread import KIND_USER, PRIO_NORMAL, Thread


class ConsumerThread(Thread):
    """Host-side consumer: woken by a GPU signal per produced batch."""

    def __init__(self, kernel, batch_work_ns=120_000):
        super().__init__(kernel, name="pipeline-consumer", kind=KIND_USER,
                         priority=PRIO_NORMAL)
        self.batch_work_ns = batch_work_ns
        self.batches_consumed = 0
        self.signal_wait_ns = 0
        self._next_signal = None

    def deliver(self, signal_done_event):
        self._next_signal = signal_done_event

    def body(self):
        while True:
            if self._next_signal is None:
                yield from self.sleep(20_000)  # poll for the next batch
                continue
            event, self._next_signal = self._next_signal, None
            start = self.env.now
            if not event.processed:
                yield from self.wait(event)
            self.signal_wait_ns += self.env.now - start
            yield from self.run_for(self.batch_work_ns)
            self.batches_consumed += 1


def producer(system, consumer, batch_compute_ns=250_000):
    """GPU-side producer: compute a batch, signal the consumer."""

    def body():
        while True:
            yield system.env.timeout(batch_compute_ns)
            consumer.deliver(system.signal_path.send())

    system.env.process(body())


def run(with_storm, horizon_ns):
    system = System(SystemConfig())
    system.add_cpu_app(parsec("vips"))  # unrelated host work
    consumer = ConsumerThread(system.kernel)
    system.kernel.spawn(consumer)
    producer(system, consumer)
    if with_storm:
        system.add_gpu_workload(gpu_app("ubench"))  # the second accelerator
    metrics = system.run(horizon_ns)
    return system, consumer, metrics


def main() -> int:
    horizon_ns = int(float(sys.argv[1]) * 1e6) if len(sys.argv) > 1 else 20_000_000

    print("Collaborative pipeline: GPU producer -> signal -> host consumer,")
    print("next to an unrelated CPU app (vips).\n")
    for label, storm in (("quiet SoC", False), ("plus an SSR-storming accelerator", True)):
        system, consumer, metrics = run(storm, horizon_ns)
        rate = consumer.batches_consumed / (horizon_ns / 1e9)
        mean_wait = (
            consumer.signal_wait_ns / consumer.batches_consumed / 1e3
            if consumer.batches_consumed
            else float("nan")
        )
        print(f"[{label}]")
        print(f"  batches consumed     : {consumer.batches_consumed} ({rate:.0f}/s)")
        print(f"  mean signal wait     : {mean_wait:.1f} us")
        print(f"  signal delivery mean : {system.signal_path.latency.mean_ns / 1e3:.1f} us")
        print(f"  vips productive time : {metrics.cpu_app.productive_ns / 1e6:.1f} ms")
        print()
    print("The storm's SSRs delay both the pipeline's signals and the")
    print("unrelated CPU app — interference crosses application boundaries.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
