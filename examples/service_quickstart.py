#!/usr/bin/env python3
"""Service quickstart: run the simulation daemon in-process and talk to it.

Boots a :class:`repro.service.HissService` on an ephemeral port, submits a
small grid of jobs over real HTTP, and watches the daemon's queue and QoS
metrics while the batch drains — then resubmits one job to show the
warm-cache path serving with zero simulations.

Usage::

    python examples/service_quickstart.py [horizon_ms]
"""

import sys
import time

from repro.service import HissService, ServiceClient


def main() -> int:
    horizon_ms = float(sys.argv[1]) if len(sys.argv) > 1 else 2.0

    print("Starting hiss-serve in-process (ephemeral port)...")
    service = HissService(port=0, jobs=1, queue_limit=8, qos_threshold=0.9)
    service.start()
    client = ServiceClient(service.url)
    print(f"serving at {service.url}: {client.health()}")

    # A small grid: the CC6 figure at two horizons, plus the SSR cost table.
    grid = [
        {"experiments": ["fig4"], "quick": True, "horizon_ms": horizon_ms},
        {"experiments": ["fig4"], "quick": True, "horizon_ms": 2 * horizon_ms},
        {"experiments": ["table1"], "quick": False, "horizon_ms": None},
    ]
    print(f"\nSubmitting {len(grid)} jobs...")
    job_ids = []
    for spec in grid:
        body = client.submit(
            spec["experiments"], quick=spec["quick"], horizon_ms=spec["horizon_ms"]
        )
        job = body["job"]
        job_ids.append(job["id"])
        print(f"  {job['id']}: {spec['experiments']} "
              f"({job['planned_runs']} planned runs)")

    print("\nQueue/QoS while the batch drains:")
    pending = set(job_ids)
    while pending:
        gauges = client.metrics()["gauges"]
        print(f"  queue depth {int(gauges['service.queue.depth'])}, "
              f"qos fraction {gauges['service.qos.fraction']:.3f} "
              f"(threshold {gauges['service.qos.threshold']:.2f})")
        for job_id in sorted(pending):
            if client.status(job_id)["state"] in ("done", "failed", "cancelled"):
                pending.discard(job_id)
        time.sleep(0.1)

    for job_id in job_ids:
        doc = client.status(job_id)
        print(f"\n{job_id}: state={doc['state']} "
              f"executed={doc['runs_executed']} cached={doc['runs_cached']}")
        for result in client.result(job_id):
            print(f"  {result['experiment_id']}: {result['title']} "
                  f"({len(result['rows'])} rows)")

    # Same work again: deduped against the live job, i.e. served for free.
    twin = client.submit(grid[0]["experiments"], quick=True, horizon_ms=horizon_ms)
    print(f"\nResubmitted the first job: deduplicated={twin['deduplicated']} "
          f"-> {twin['job']['id']}")

    counters = client.metrics()["counters"]
    print(f"jobs completed: {counters.get('service.jobs.completed', 0)}, "
          f"runs executed: {counters.get('service.runs.executed', 0)}, "
          f"deduplicated submissions: {counters.get('service.jobs.deduplicated', 0)}")

    service.stop()
    print("drained and stopped.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
