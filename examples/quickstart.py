#!/usr/bin/env python3
"""Quickstart: observe host interference from GPU system service requests.

Runs the paper's headline scenario on the simulator: a PARSEC application
(fluidanimate) sharing a heterogeneous SoC with a GPU workload (sssp) whose
page faults must be serviced by the host CPUs.  Three runs:

1. the pair with the GPU's memory pinned (no SSRs) — the CPU baseline,
2. the pair with SSRs enabled — interference appears,
3. the GPU alone with idle CPUs — the GPU baseline.

Usage::

    python examples/quickstart.py [horizon_ms]
"""

import sys

from repro import System, SystemConfig, gpu_app, parsec


def run_pair(cpu_name, gpu_name, ssr_enabled, horizon_ns):
    system = System(SystemConfig())
    app = system.add_cpu_app(parsec(cpu_name)) if cpu_name else None
    system.add_gpu_workload(gpu_app(gpu_name), ssr_enabled=ssr_enabled)
    metrics = system.run(horizon_ns)
    return metrics


def main() -> int:
    horizon_ms = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    horizon_ns = int(horizon_ms * 1_000_000)
    cpu_name, gpu_name = "fluidanimate", "sssp"

    print(f"Simulating {cpu_name} (CPU) + {gpu_name} (GPU) for {horizon_ms:.0f} ms each...")
    baseline = run_pair(cpu_name, gpu_name, ssr_enabled=False, horizon_ns=horizon_ns)
    interfered = run_pair(cpu_name, gpu_name, ssr_enabled=True, horizon_ns=horizon_ns)
    gpu_alone = run_pair(None, gpu_name, ssr_enabled=True, horizon_ns=horizon_ns)

    cpu_ratio = interfered.cpu_app.instructions / baseline.cpu_app.instructions
    gpu_ratio = interfered.gpu.progress_ns / gpu_alone.gpu.progress_ns

    print()
    print("=== CPU side (host interference from GPU system services) ===")
    print(f"instructions, no SSRs : {baseline.cpu_app.instructions / 1e6:10.1f} M")
    print(f"instructions, SSRs on : {interfered.cpu_app.instructions / 1e6:10.1f} M")
    print(f"relative performance  : {cpu_ratio:10.3f}  "
          f"({(1 - cpu_ratio) * 100:.1f}% lost to SSR interference)")
    print(f"SSR servicing took    : {interfered.ssr_time_fraction * 100:10.1f} % of all CPU time")
    print(f"L1D miss increase     : {interfered.cpu_app.l1_miss_increase * 100:10.1f} %")
    print(f"branch mispredict +   : {interfered.cpu_app.mispredict_increase * 100:10.1f} %")

    print()
    print("=== GPU side (SSR handling depends on busy CPUs) ===")
    print(f"progress, idle CPUs   : {gpu_alone.gpu.progress_ns / 1e6:10.2f} ms of compute")
    print(f"progress, busy CPUs   : {interfered.gpu.progress_ns / 1e6:10.2f} ms of compute")
    print(f"relative performance  : {gpu_ratio:10.3f}")
    print(f"mean SSR latency      : {interfered.gpu.mean_ssr_latency_ns / 1e3:10.1f} us "
          f"(idle CPUs: {gpu_alone.gpu.mean_ssr_latency_ns / 1e3:.1f} us)")

    print()
    print("=== System behaviour ===")
    print(f"SSRs completed        : {interfered.ssr_completed:10d}")
    print(f"interrupts per core   : {interfered.interrupts_per_core}")
    print(f"resched IPIs          : {interfered.ipis:10d} "
          f"(no-SSR run: {baseline.ipis})")
    print(f"CC6 sleep residency   : {gpu_alone.cc6_residency * 100:10.1f} % (GPU alone)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
