#!/usr/bin/env python3
"""Capacity planning with the Section VI QoS governor.

A system administrator wants to bound how much CPU time a misbehaving (or
merely enthusiastic) accelerator may consume.  This example sweeps the
governor threshold and reports, for each setting, the CPU application's
recovered performance, the accelerator's surviving throughput, and the
governor's own behaviour (back-off escalation, total injected delay) —
the data needed to pick a threshold for a real deployment.

Usage::

    python examples/qos_capacity_planning.py [cpu_app] [horizon_ms]
"""

import sys

from repro import System, SystemConfig, gpu_app, parsec

THRESHOLDS = [None, 0.25, 0.10, 0.05, 0.02, 0.01]


def run(cpu_name, threshold, ssr_enabled, horizon_ns):
    config = SystemConfig()
    if threshold is not None:
        config = config.with_qos(enabled=True, ssr_time_threshold=threshold)
    system = System(config)
    system.add_cpu_app(parsec(cpu_name))
    system.add_gpu_workload(gpu_app("ubench"), ssr_enabled=ssr_enabled)
    return system, system.run(horizon_ns)


def main() -> int:
    cpu_name = sys.argv[1] if len(sys.argv) > 1 else "x264"
    horizon_ns = int(float(sys.argv[2]) * 1e6) if len(sys.argv) > 2 else 20_000_000

    print(f"QoS threshold sweep: {cpu_name} vs the ubench SSR storm")
    _, baseline = run(cpu_name, None, False, horizon_ns)
    # Unthrottled storm with idle CPUs for the GPU normalization:
    idle_system = System(SystemConfig())
    idle_system.add_gpu_workload(gpu_app("ubench"))
    idle_metrics = idle_system.run(horizon_ns)

    header = (
        f"{'threshold':>9s} {'cpu_perf':>9s} {'ssr_time%':>9s} {'ubench':>8s} "
        f"{'throttles':>9s} {'max_delay_us':>12s}"
    )
    print()
    print(header)
    print("-" * len(header))
    for threshold in THRESHOLDS:
        system, metrics = run(cpu_name, threshold, True, horizon_ns)
        cpu_perf = metrics.cpu_app.instructions / baseline.cpu_app.instructions
        gpu_perf = metrics.gpu.faults_completed / idle_metrics.gpu.faults_completed
        governor = system.kernel.qos_governor
        label = "off" if threshold is None else f"{threshold * 100:.0f}%"
        print(
            f"{label:>9s} {cpu_perf:9.3f} {metrics.ssr_time_fraction * 100:9.2f} "
            f"{gpu_perf:8.3f} "
            f"{governor.throttle_events if governor else 0:9d} "
            f"{(governor.max_delay_ns_seen / 1e3) if governor else 0:12.1f}"
        )
    print()
    print("cpu_perf: vs the no-SSR pair.  ubench: SSR rate vs idle CPUs.")
    print("The governor trades accelerator throughput for a hard-ish cap on")
    print("host CPU time spent servicing SSRs (backpressure via the GPU's")
    print("bounded outstanding-fault window; no hardware changes).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
