#!/usr/bin/env python3
"""Dissect the anatomy of a GPU system service request.

Walks every SSR kind from the paper's Table I through the full handling
chain (Figure 1) on an otherwise idle system, and contrasts the split
driver with the monolithic bottom half — showing where each microsecond
of latency comes from.  Also demonstrates the direct signal path
(S_SENDMSG) that bypasses the IOMMU.

Usage::

    python examples/ssr_latency_anatomy.py
"""

import sys

from repro import System, SystemConfig
from repro.iommu import SSR_CATALOG
from repro.mitigations import monolithic
from repro.workloads import GpuAppProfile


def measure(kind_name, config, horizon_ns=6_000_000):
    system = System(config)
    profile = GpuAppProfile(
        name=f"probe-{kind_name}",
        compute_chunk_ns=150_000,
        faults_per_chunk=2.0,
        blocking=False,
        fault_spacing_ns=10_000,
        ssr_kind=kind_name,
    )
    system.add_gpu_workload(profile)
    system.run(horizon_ns)
    return system.iommu.latency


def measure_signal(config, horizon_ns=6_000_000):
    system = System(config)
    system.kernel.boot()
    system.driver.start()

    def sender():
        for _ in range(40):
            yield system.env.timeout(120_000)
            system.signal_path.send()

    system.env.process(sender())
    system.env.run(until=horizon_ns)
    system.kernel.finalize()
    return system.signal_path.latency


def main() -> int:
    default = SystemConfig()
    mono = monolithic(SystemConfig())
    os_path = default.os_path

    print("The SSR handling chain (paper Fig. 1), calibrated stage costs:")
    print(f"  1/2  fault -> PPR entry + MSI     {default.iommu.fault_to_interrupt_ns / 1e3:7.1f} us")
    print(f"  3    top half (hard IRQ)          {os_path.top_half_ns / 1e3:7.1f} us")
    print(f"  3a   bottom-half dispatch         {os_path.bottom_half_dispatch_ns / 1e3:7.1f} us  (skipped by monolithic)")
    print(f"  4a   bottom-half pre-processing   {os_path.bottom_half_per_request_ns / 1e3:7.1f} us/request")
    print(f"  4b   work-queue insertion         {os_path.queue_work_ns / 1e3:7.1f} us")
    print(f"  5    worker service (page fault)  {os_path.page_fault_service_ns / 1e3:7.1f} us")
    print(f"  6    response to device           {os_path.response_ns / 1e3:7.1f} us")

    print()
    header = f"{'ssr kind':20s} {'complexity':18s} {'split us':>9s} {'monolithic us':>14s} {'saved':>6s}"
    print(header)
    print("-" * len(header))
    for kind in SSR_CATALOG.values():
        if kind.name == "signal":
            split = measure_signal(default)
            merged = measure_signal(mono)
        else:
            split = measure(kind.name, default)
            merged = measure(kind.name, mono)
        saved = split.mean_ns - merged.mean_ns
        print(
            f"{kind.name:20s} {kind.complexity:18s} {split.mean_ns / 1e3:9.1f} "
            f"{merged.mean_ns / 1e3:14.1f} {saved / 1e3:5.1f}us"
        )
    print()
    print("The monolithic handler removes the bottom-half scheduling hop —")
    print("the latency the paper credits for its up-to-2.3x GPU speedups —")
    print("at the price of more time in hard-IRQ context on the host.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
